"""The recursive DNS-over-MoQT resolver (Fig. 2 and §4/§5 of the paper).

The resolver keeps the recursive nature of DNS resolution but replaces
request/response with MoQT subscribe + joining-fetch at every level of the
hierarchy:

1. Ask a root server for the nameservers of the top-level domain by
   subscribing to the ``NS`` track of the TLD and fetching the current
   version.
2. Follow the referral: ask the TLD server for the nameservers of the
   second-level zone the same way.
3. Ask the authoritative server the original question (subscribe + fetch).

All upstream sessions are obtained from an
:class:`~repro.core.session_manager.UpstreamSessionManager`, so connections
and MoQT sessions are reused across lookups and 0-RTT is used when a session
ticket exists (§5.2).  Pushed objects arriving on any upstream subscription
update the resolver's record store and are forwarded to downstream
subscribers of the same question (the resolver acts as a relay for DNS
tracks).

Downstream, the resolver serves:

* MoQT sessions from stub resolvers/forwarders (subscribe + fetch), and
* classic DNS over UDP, for unmodified stubs.

For authoritative servers that do not support MoQT, the resolver runs the
§4.5 compatibility path: a happy-eyeballs race between the MoQT attempt and
a classic UDP query, after which it either declines downstream subscriptions
or keeps them alive by re-fetching the record every TTL
(:class:`~repro.core.compatibility.RefreshScheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.compatibility import (
    CapabilityMemo,
    CompatibilityMode,
    HappyEyeballsConfig,
    RefreshScheduler,
    UpstreamCapability,
)
from repro.core.encapsulation import decapsulate_response, encapsulate_response
from repro.core.mapping import DnsQuestionKey, question_to_track, track_to_question
from repro.core.errors import MappingError
from repro.core.session_manager import SessionManagerConfig, UpstreamSessionManager
from repro.core.subscription import SubscriptionRegistry, TeardownPolicy
from repro.dns.message import Flags, Header, Message, make_response
from repro.dns.name import Name
from repro.dns.transport import DnsUdpEndpoint
from repro.dns.types import DNS_UDP_PORT, MOQT_PORT, Opcode, Rcode, RecordType
from repro.moqt.errors import FetchErrorCode, SubscribeErrorCode
from repro.moqt.messages import Fetch, Subscribe
from repro.moqt.objectmodel import Location, MoqtObject
from repro.moqt.session import (
    FetchResult,
    MoqtSession,
    MoqtSessionConfig,
    SubscribeResult,
)
from repro.moqt.track import FullTrackName
from repro.netsim.node import Host
from repro.netsim.packet import Address
from repro.netsim.simulator import Timer
from repro.quic.connection import QuicConnection
from repro.quic.endpoint import QuicEndpoint
from repro.quic.tls import ServerTlsContext

MOQT_ALPN = "moq-00"
MAX_RESOLUTION_STEPS = 12


@dataclass
class ResolverConfig:
    """Behavioural knobs of the recursive MoQT resolver."""

    serve_moqt: bool = True
    serve_udp: bool = True
    moqt_port: int = MOQT_PORT
    udp_port: int = DNS_UDP_PORT
    happy_eyeballs: HappyEyeballsConfig = field(default_factory=HappyEyeballsConfig)
    compatibility_mode: CompatibilityMode = CompatibilityMode.PERIODIC_REFRESH
    default_negative_ttl: float = 60.0
    session_manager: SessionManagerConfig = field(default_factory=SessionManagerConfig)
    moqt_session: MoqtSessionConfig = field(default_factory=MoqtSessionConfig)
    #: QUIC parameters applied to *downstream* (stub-facing) connections.
    #: Long-delay deployments (deep space) raise the idle timeout and the
    #: initial RTT here so accepted connections survive the path delay.
    downstream_connection: "ConnectionConfig | None" = None


@dataclass
class RecordEntry:
    """The resolver's knowledge about one DNS question."""

    key: DnsQuestionKey
    message: Message
    version: int
    updated_at: float
    ttl: float
    subscribed: bool = False
    via_moqt: bool = True
    pushed_updates: int = 0

    def is_fresh(self, now: float) -> bool:
        """Subscribed entries are always fresh; others respect the TTL."""
        if self.subscribed:
            return True
        return now < self.updated_at + self.ttl

    def age(self, now: float) -> float:
        """Seconds since the entry was last updated."""
        return now - self.updated_at


@dataclass
class MoqResolveOutcome:
    """Result of a recursive MoQT resolution handed to callbacks."""

    key: DnsQuestionKey
    message: Message | None
    version: int = 0
    rcode: Rcode = Rcode.SERVFAIL
    from_cache: bool = False
    via_moqt: bool = True
    upstream_operations: int = 0
    duration: float = 0.0

    @property
    def is_success(self) -> bool:
        """Whether an answer (possibly negative) was obtained."""
        return self.message is not None and self.rcode in (Rcode.NOERROR, Rcode.NXDOMAIN)


@dataclass
class RecursiveStatistics:
    """Counters kept by the recursive resolver."""

    client_queries_udp: int = 0
    client_subscribes: int = 0
    client_fetches: int = 0
    lookups: int = 0
    cache_hits: int = 0
    upstream_subscribe_fetch: int = 0
    upstream_udp_queries: int = 0
    udp_fallbacks: int = 0
    pushes_received: int = 0
    pushes_forwarded: int = 0
    subscriptions_declined: int = 0
    refresh_republishes: int = 0
    failures: int = 0


class MoqRecursiveResolver:
    """A recursive resolver speaking MoQT upstream and MoQT/UDP downstream."""

    def __init__(
        self,
        host: Host,
        root_servers: list[Address],
        config: ResolverConfig | None = None,
        teardown_policy: TeardownPolicy | None = None,
    ) -> None:
        if not root_servers:
            raise ValueError("at least one root server address is required")
        self.host = host
        self.simulator = host.simulator
        self.config = config if config is not None else ResolverConfig()
        self.root_servers = list(root_servers)
        self.statistics = RecursiveStatistics()
        self.capabilities = CapabilityMemo()
        self.registry = SubscriptionRegistry(teardown_policy)
        self.refresher = RefreshScheduler(host.simulator)
        self.sessions = UpstreamSessionManager(
            host,
            config=self.config.session_manager,
            session_config=self.config.moqt_session,
        )
        self._records: dict[DnsQuestionKey, RecordEntry] = {}
        self._fallback_versions: dict[DnsQuestionKey, int] = {}
        self._downstream: dict[DnsQuestionKey, list[tuple[MoqtSession, int]]] = {}
        self._upstream_tracks: dict[DnsQuestionKey, bool] = {}
        self._in_flight: dict[DnsQuestionKey, list[Callable[[MoqResolveOutcome], None]]] = {}

        self._udp_client = DnsUdpEndpoint(host)
        self._udp_server: DnsUdpEndpoint | None = None
        if self.config.serve_udp:
            self._udp_server = DnsUdpEndpoint(
                host, port=self.config.udp_port, handler=self._handle_udp_query
            )
        self._moqt_endpoint: QuicEndpoint | None = None
        self._downstream_sessions: list[MoqtSession] = []
        if self.config.serve_moqt:
            self._moqt_endpoint = QuicEndpoint(
                host,
                port=self.config.moqt_port,
                server_config=self.config.downstream_connection,
                server_tls=ServerTlsContext(alpn_protocols=(MOQT_ALPN,)),
                on_connection=self._on_downstream_connection,
            )

    # ------------------------------------------------------------- public API
    @property
    def udp_address(self) -> Address | None:
        """Address for classic DNS clients (None when UDP serving is off)."""
        return self._udp_server.address if self._udp_server is not None else None

    @property
    def moqt_address(self) -> Address | None:
        """Address for MoQT clients (None when MoQT serving is off)."""
        return self._moqt_endpoint.address if self._moqt_endpoint is not None else None

    def record(self, key: DnsQuestionKey) -> RecordEntry | None:
        """The resolver's current entry for a question, if any."""
        return self._records.get(key)

    def records(self) -> dict[DnsQuestionKey, RecordEntry]:
        """All known records."""
        return dict(self._records)

    def state_summary(self) -> dict[str, int]:
        """State-overhead accounting (§5.1): sessions, subscriptions, records."""
        summary = self.sessions.state_summary()
        summary["tracked_questions"] = self.registry.state_size()
        summary["records"] = len(self._records)
        summary["downstream_subscribers"] = sum(len(v) for v in self._downstream.values())
        return summary

    def run_teardown(self) -> int:
        """Apply the teardown policy to tracked subscriptions (§4.4).

        Returns the number of subscriptions dropped.  Unsubscribing from
        upstream tracks is modelled by forgetting the local state; the next
        lookup for a dropped question re-subscribes and resumes from the last
        known group ID kept by the registry.
        """
        victims = self.registry.collect_victims(self.simulator.now)
        for victim in victims:
            entry = self._records.get(victim.key)
            if entry is not None:
                entry.subscribed = False
            self._upstream_tracks.pop(victim.key, None)
        return len(victims)

    def resolve(
        self,
        key: DnsQuestionKey,
        callback: Callable[[MoqResolveOutcome], None],
    ) -> None:
        """Resolve a question, preferring fresh local state over the network."""
        self.statistics.lookups += 1
        self.registry.record_lookup(key, self.simulator.now)
        entry = self._records.get(key)
        if entry is not None and entry.is_fresh(self.simulator.now):
            self.statistics.cache_hits += 1
            callback(
                MoqResolveOutcome(
                    key=key,
                    message=entry.message,
                    version=entry.version,
                    rcode=entry.message.rcode,
                    from_cache=True,
                    via_moqt=entry.via_moqt,
                )
            )
            return
        waiters = self._in_flight.get(key)
        if waiters is not None:
            waiters.append(callback)
            return
        self._in_flight[key] = [callback]
        task = _ResolutionTask(self, key)
        task.start()

    # ----------------------------------------------------- resolution plumbing
    def _finish_resolution(self, key: DnsQuestionKey, outcome: MoqResolveOutcome) -> None:
        if not outcome.is_success:
            self.statistics.failures += 1
        callbacks = self._in_flight.pop(key, [])
        for callback in callbacks:
            callback(outcome)

    def _store_answer(
        self,
        key: DnsQuestionKey,
        message: Message,
        version: int,
        subscribed: bool,
        via_moqt: bool,
    ) -> RecordEntry:
        ttl = self._answer_ttl(message)
        entry = RecordEntry(
            key=key,
            message=message,
            version=version,
            updated_at=self.simulator.now,
            ttl=ttl,
            subscribed=subscribed,
            via_moqt=via_moqt,
        )
        self._records[key] = entry
        return entry

    def _answer_ttl(self, message: Message) -> float:
        answer_ttls = [record.ttl for record in message.answers]
        if answer_ttls:
            return float(min(answer_ttls))
        soa_minimums = [
            min(record.ttl, record.rdata.minimum)  # type: ignore[attr-defined]
            for record in message.authorities
            if record.rdtype == RecordType.SOA
        ]
        if soa_minimums:
            return float(min(soa_minimums))
        return self.config.default_negative_ttl

    # ------------------------------------------------ upstream subscribe+fetch
    def moqt_subscribe_fetch(
        self,
        server: Address,
        key: DnsQuestionKey,
        callback: Callable[[Message | None, int], None],
    ) -> None:
        """One Fig. 2 step: subscribe to a question track and fetch the record.

        The callback receives the decoded DNS response and the version
        (group ID), or ``(None, 0)`` if the server declined or timed out.
        """
        self.statistics.upstream_subscribe_fetch += 1
        session = self.sessions.get_session(server)
        track = question_to_track(key)
        finished = {"done": False}
        timeout = Timer(self.simulator, lambda: complete(None, 0))

        def complete(message: Message | None, version: int) -> None:
            if finished["done"]:
                return
            finished["done"] = True
            timeout.stop()
            if message is not None:
                self.capabilities.note_moqt_success(server.host)
            callback(message, version)

        def on_push(obj: MoqtObject) -> None:
            self._on_upstream_push(key, obj)

        def on_sub_response(subscription) -> None:
            if subscription.state == "error":
                complete(None, 0)

        subscription = session.subscribe(track, on_object=on_push, on_response=on_sub_response)

        def on_fetch_complete(fetch_request) -> None:
            if not fetch_request.succeeded or not fetch_request.objects:
                complete(None, 0)
                return
            obj = fetch_request.objects[-1]
            try:
                message = decapsulate_response(obj)
            except MappingError:
                complete(None, 0)
                return
            self._upstream_tracks[key] = True
            self.registry.record_update(key, self.simulator.now, obj.group_id)
            complete(message, obj.group_id)

        session.joining_fetch(subscription, 1, on_complete=on_fetch_complete)
        timeout.start(self.config.happy_eyeballs.moqt_timeout)

    def udp_query(
        self,
        server: Address,
        key: DnsQuestionKey,
        callback: Callable[[Message | None], None],
    ) -> None:
        """Classic DNS-over-UDP query used by the §4.5 fallback."""
        from repro.dns.message import make_query

        self.statistics.upstream_udp_queries += 1
        query = make_query(key.qname, key.qtype, recursion_desired=False)
        udp_server = Address(server.host, DNS_UDP_PORT)
        self._udp_client.query(query, udp_server, callback)

    def lookup_step(
        self,
        server: Address,
        key: DnsQuestionKey,
        callback: Callable[[Message | None, int, bool], None],
    ) -> None:
        """Query one upstream server, racing MoQT against UDP when needed.

        The callback receives ``(message, version, via_moqt)``.
        """
        capability = self.capabilities.get(server.host)
        if capability is UpstreamCapability.UDP_ONLY:
            self.statistics.udp_fallbacks += 1
            self.udp_query(server, key, lambda message: callback(message, 0, False))
            return
        if capability is UpstreamCapability.MOQT or not self.config.happy_eyeballs.enabled:
            def moqt_done(message: Message | None, version: int) -> None:
                if message is None and capability is UpstreamCapability.UNKNOWN:
                    # MoQT failed on an unknown server: fall back to UDP.
                    self.capabilities.note_udp_only(server.host)
                    self.statistics.udp_fallbacks += 1
                    self.udp_query(server, key, lambda m: callback(m, 0, False))
                    return
                callback(message, version, message is not None)

            self.moqt_subscribe_fetch(server, key, moqt_done)
            return

        # Happy eyeballs: race MoQT against UDP (§4.5).
        finished = {"done": False}

        def finish(message: Message | None, version: int, via_moqt: bool) -> None:
            if finished["done"]:
                return
            if message is None and not finished.get("other_failed"):
                # First failure: wait for the other attempt.
                finished["other_failed"] = True
                return
            finished["done"] = True
            callback(message, version, via_moqt)

        def moqt_done(message: Message | None, version: int) -> None:
            if message is None and self.capabilities.get(server.host) is UpstreamCapability.UNKNOWN:
                self.capabilities.note_udp_only(server.host)
            if message is not None and finished["done"]:
                # The UDP answer already won the race, but the MoQT attempt
                # succeeded: the upstream subscription is established, so
                # upgrade the stored record to the subscribed/push-fed state.
                self._store_answer(key, message, version, subscribed=True, via_moqt=True)
                return
            finish(message, version, True)

        def udp_done(message: Message | None) -> None:
            finish(message, 0, False)

        self.moqt_subscribe_fetch(server, key, moqt_done)
        if self.config.happy_eyeballs.udp_head_start > 0:
            self.simulator.call_later(
                self.config.happy_eyeballs.udp_head_start,
                lambda: None if finished["done"] else self.udp_query(server, key, udp_done),
            )
        else:
            self.udp_query(server, key, udp_done)

    # --------------------------------------------------------- pushed updates
    def _on_upstream_push(self, key: DnsQuestionKey, obj: MoqtObject) -> None:
        """An authoritative server pushed a new version of a record."""
        self.statistics.pushes_received += 1
        try:
            message = decapsulate_response(obj)
        except MappingError:
            return
        entry = self._records.get(key)
        if entry is not None and obj.group_id <= entry.version and entry.via_moqt:
            return
        entry = self._store_answer(key, message, obj.group_id, subscribed=True, via_moqt=True)
        entry.pushed_updates += 1
        self.registry.record_update(key, self.simulator.now, obj.group_id)
        self._forward_downstream(key, obj)

    def _forward_downstream(self, key: DnsQuestionKey, obj: MoqtObject) -> None:
        subscribers = self._downstream.get(key, [])
        live: list[tuple[MoqtSession, int]] = []
        for session, request_id in subscribers:
            if session.closed:
                continue
            publisher_subscription = session.publisher_subscription(request_id)
            if publisher_subscription is None:
                continue
            session.publish(publisher_subscription, obj)
            self.statistics.pushes_forwarded += 1
            live.append((session, request_id))
        if key in self._downstream:
            self._downstream[key] = live

    # --------------------------------------------------- downstream: classic UDP
    def _handle_udp_query(self, query: Message, source: Address, respond) -> None:
        self.statistics.client_queries_udp += 1
        if not query.questions:
            respond(make_response(query, rcode=Rcode.FORMERR))
            return
        key = DnsQuestionKey.from_message(query)

        def finished(outcome: MoqResolveOutcome) -> None:
            if outcome.message is None:
                respond(make_response(query, rcode=Rcode.SERVFAIL, recursion_available=True))
                return
            respond(
                make_response(
                    query,
                    answers=outcome.message.answers,
                    authorities=outcome.message.authorities,
                    additionals=outcome.message.additionals,
                    rcode=outcome.rcode,
                    recursion_available=True,
                )
            )

        self.resolve(key, finished)

    # ------------------------------------------------------ downstream: MoQT
    def _on_downstream_connection(self, connection: QuicConnection) -> None:
        session = MoqtSession(
            connection,
            is_client=False,
            config=self.config.moqt_session,
            publisher_delegate=_ResolverDelegate(self),
        )
        self._downstream_sessions.append(session)

    def downstream_sessions(self) -> list[MoqtSession]:
        """MoQT sessions accepted from stubs/forwarders."""
        return list(self._downstream_sessions)

    def _handle_downstream_subscribe(
        self, session: MoqtSession, message: Subscribe
    ) -> SubscribeResult | None:
        self.statistics.client_subscribes += 1
        try:
            key = track_to_question(message.full_track_name)
        except MappingError as error:
            return SubscribeResult(
                ok=False, error_code=SubscribeErrorCode.TRACK_DOES_NOT_EXIST, reason=str(error)
            )

        def finished(outcome: MoqResolveOutcome) -> None:
            if outcome.message is None:
                self.statistics.subscriptions_declined += 1
                session.complete_subscribe(
                    message.request_id,
                    SubscribeResult(
                        ok=False,
                        error_code=SubscribeErrorCode.TRACK_DOES_NOT_EXIST,
                        reason="resolution failed",
                    ),
                )
                return
            if not outcome.via_moqt:
                self._handle_fallback_subscription(session, message, key, outcome)
                return
            self._downstream.setdefault(key, []).append((session, message.request_id))
            session.complete_subscribe(
                message.request_id,
                SubscribeResult(ok=True, largest=Location(outcome.version, 0)),
            )

        self.resolve(key, finished)
        return None

    def _handle_fallback_subscription(
        self,
        session: MoqtSession,
        message: Subscribe,
        key: DnsQuestionKey,
        outcome: MoqResolveOutcome,
    ) -> None:
        """§4.5: the authoritative server does not support MoQT."""
        if self.config.compatibility_mode is CompatibilityMode.DECLINE_SUBSCRIPTION:
            self.statistics.subscriptions_declined += 1
            session.complete_subscribe(
                message.request_id,
                SubscribeResult(
                    ok=False,
                    error_code=SubscribeErrorCode.NOT_SUPPORTED,
                    reason="authoritative server does not support MoQT",
                ),
            )
            return
        # Periodic-refresh mode: accept and keep the record fresh by polling.
        self._downstream.setdefault(key, []).append((session, message.request_id))
        session.complete_subscribe(
            message.request_id,
            SubscribeResult(ok=True, largest=Location(outcome.version, 0)),
        )
        entry = self._records.get(key)
        interval = entry.ttl if entry is not None and entry.ttl > 0 else self.config.default_negative_ttl
        if not self.refresher.is_scheduled(key):
            self.refresher.schedule(key, interval, self._refresh_fallback_record)

    def _refresh_fallback_record(self, key: DnsQuestionKey) -> None:
        """Re-query a non-MoQT upstream and push downstream if the record changed."""
        entry = self._records.get(key)
        if entry is None or not self._downstream.get(key):
            self.refresher.cancel(key)
            return
        auth_server = self._auth_server_for(key)
        if auth_server is None:
            return

        def on_response(message: Message | None) -> None:
            if message is None:
                return
            old_fingerprint = _answer_fingerprint(entry.message)
            new_fingerprint = _answer_fingerprint(message)
            version = self._fallback_versions.get(key, entry.version)
            if new_fingerprint != old_fingerprint:
                version += 1
                self._fallback_versions[key] = version
                new_entry = self._store_answer(
                    key, message, version, subscribed=True, via_moqt=False
                )
                new_entry.pushed_updates = entry.pushed_updates + 1
                obj = encapsulate_response(message, version)
                self.statistics.refresh_republishes += 1
                self._forward_downstream(key, obj)
            else:
                entry.updated_at = self.simulator.now

        self.udp_query(auth_server, key, on_response)

    def _auth_server_for(self, key: DnsQuestionKey) -> Address | None:
        """Best-known authoritative server address for a question's zone.

        Derived from cached NS/A referral data collected during resolution.
        """
        ancestors = key.qname.ancestors()
        for ancestor in ancestors:
            ns_key = DnsQuestionKey(
                qname=ancestor,
                qtype=RecordType.NS,
                qclass=key.qclass,
                opcode=key.opcode,
                recursion_desired=False,
                checking_disabled=key.checking_disabled,
            )
            entry = self._records.get(ns_key)
            if entry is None:
                continue
            address = _extract_server_address(entry.message)
            if address is not None:
                return address
        return None

    def _handle_downstream_fetch(
        self, session: MoqtSession, message: Fetch, full_track_name: FullTrackName | None
    ) -> FetchResult | None:
        self.statistics.client_fetches += 1
        if full_track_name is None:
            return FetchResult(
                ok=False,
                error_code=FetchErrorCode.TRACK_DOES_NOT_EXIST,
                reason="fetch without a resolvable track name",
            )
        try:
            key = track_to_question(full_track_name)
        except MappingError as error:
            return FetchResult(
                ok=False, error_code=FetchErrorCode.TRACK_DOES_NOT_EXIST, reason=str(error)
            )

        def finished(outcome: MoqResolveOutcome) -> None:
            if outcome.message is None:
                session.complete_fetch(
                    message.request_id,
                    FetchResult(
                        ok=False,
                        error_code=FetchErrorCode.TRACK_DOES_NOT_EXIST,
                        reason="resolution failed",
                    ),
                )
                return
            obj = encapsulate_response(outcome.message, outcome.version)
            session.complete_fetch(
                message.request_id,
                FetchResult(ok=True, objects=[obj], largest=obj.location),
            )

        self.resolve(key, finished)
        return None


def _answer_fingerprint(message: Message) -> tuple[str, ...]:
    """Content fingerprint of the answer section (order-insensitive)."""
    return tuple(sorted(record.to_text() for record in message.answers))


def _extract_server_address(message: Message) -> Address | None:
    """Pull a nameserver address out of a referral/NS response."""
    ns_targets = [
        record.rdata.target  # type: ignore[attr-defined]
        for record in [*message.answers, *message.authorities]
        if record.rdtype == RecordType.NS
    ]
    if not ns_targets:
        return None
    for record in message.additionals:
        if record.rdtype in (RecordType.A, RecordType.AAAA) and record.name in ns_targets:
            return Address(record.rdata.to_text(), MOQT_PORT)
    return None


class _ResolutionTask:
    """One recursive resolution following the Fig. 2 sequence."""

    def __init__(self, resolver: MoqRecursiveResolver, key: DnsQuestionKey) -> None:
        self._resolver = resolver
        self._key = key
        self._started_at = resolver.simulator.now
        self._operations = 0
        self._steps = 0
        self._servers: list[Address] = list(resolver.root_servers)
        # Parent chain to walk: for www.example.com -> [com., example.com.]
        ancestors = [name for name in key.qname.ancestors() if not name.is_root]
        ancestors.reverse()
        self._delegation_chain: list[Name] = ancestors[:-1] if len(ancestors) > 1 else []
        self._chain_index = 0
        self._via_moqt = True

    # ------------------------------------------------------------------ driver
    def start(self) -> None:
        """Resolve cached delegations first, then walk the remaining chain."""
        self._skip_cached_delegations()
        self._next_step()

    def _skip_cached_delegations(self) -> None:
        """Use cached NS entries to start as deep in the hierarchy as possible."""
        while self._chain_index < len(self._delegation_chain):
            zone_name = self._delegation_chain[self._chain_index]
            ns_key = self._ns_key(zone_name)
            entry = self._resolver.record(ns_key)
            if entry is None or not entry.is_fresh(self._resolver.simulator.now):
                return
            address = _extract_server_address(entry.message)
            if address is None:
                return
            self._servers = [address]
            self._chain_index += 1

    def _ns_key(self, zone_name: Name) -> DnsQuestionKey:
        return DnsQuestionKey(
            qname=zone_name,
            qtype=RecordType.NS,
            qclass=self._key.qclass,
            opcode=self._key.opcode,
            recursion_desired=False,
            checking_disabled=self._key.checking_disabled,
        )

    def _next_step(self) -> None:
        self._steps += 1
        if self._steps > MAX_RESOLUTION_STEPS:
            self._fail()
            return
        if not self._servers:
            self._fail()
            return
        server = self._servers[0]
        if self._chain_index < len(self._delegation_chain):
            zone_name = self._delegation_chain[self._chain_index]
            step_key = self._ns_key(zone_name)
            self._operations += 1
            self._resolver.lookup_step(
                server, step_key, lambda m, v, moqt: self._on_delegation(step_key, m, v, moqt)
            )
        else:
            self._operations += 1
            self._resolver.lookup_step(server, self._key, self._on_final)

    # ----------------------------------------------------------------- handlers
    def _on_delegation(
        self, step_key: DnsQuestionKey, message: Message | None, version: int, via_moqt: bool
    ) -> None:
        if message is None:
            self._servers.pop(0)
            self._next_step()
            return
        if not via_moqt:
            self._via_moqt = False
        self._resolver._store_answer(  # noqa: SLF001 - task is an extension of the resolver
            step_key, message, version, subscribed=via_moqt, via_moqt=via_moqt
        )
        address = _extract_server_address(message)
        if address is None:
            # No delegation found: the current server is authoritative for
            # deeper names as well; go straight to the final question there.
            self._chain_index = len(self._delegation_chain)
            self._next_step()
            return
        self._servers = [address]
        self._chain_index += 1
        self._next_step()

    def _on_final(self, message: Message | None, version: int, via_moqt: bool) -> None:
        if message is None:
            self._servers.pop(0)
            self._next_step()
            return
        if not via_moqt:
            self._via_moqt = False
        # A referral at the final step means there is a deeper zone cut than
        # the delegation chain anticipated: follow it.
        if not message.answers and any(
            record.rdtype == RecordType.NS for record in message.authorities
        ) and message.rcode == Rcode.NOERROR and not _is_authoritative_nodata(message):
            address = _extract_server_address(message)
            if address is not None:
                # Remember the delegation under the child zone's NS question
                # so later lookups (and the periodic-refresh fallback) know
                # which server is authoritative for it.
                ns_owner = next(
                    record.name
                    for record in message.authorities
                    if record.rdtype == RecordType.NS
                )
                self._resolver._store_answer(  # noqa: SLF001
                    self._ns_key(ns_owner), message, version, subscribed=via_moqt, via_moqt=via_moqt
                )
                self._servers = [address]
                self._next_step()
                return
        entry = self._resolver._store_answer(  # noqa: SLF001
            self._key, message, version, subscribed=via_moqt, via_moqt=via_moqt
        )
        outcome = MoqResolveOutcome(
            key=self._key,
            message=message,
            version=version,
            rcode=message.rcode,
            via_moqt=entry.via_moqt,
            upstream_operations=self._operations,
            duration=self._resolver.simulator.now - self._started_at,
        )
        self._resolver._finish_resolution(self._key, outcome)  # noqa: SLF001

    def _fail(self) -> None:
        outcome = MoqResolveOutcome(
            key=self._key,
            message=None,
            rcode=Rcode.SERVFAIL,
            via_moqt=self._via_moqt,
            upstream_operations=self._operations,
            duration=self._resolver.simulator.now - self._started_at,
        )
        self._resolver._finish_resolution(self._key, outcome)  # noqa: SLF001


def _is_authoritative_nodata(message: Message) -> bool:
    """Whether a NOERROR response is an authoritative empty answer (has SOA)."""
    return any(record.rdtype == RecordType.SOA for record in message.authorities)


class _ResolverDelegate:
    """Publisher delegate adapter for downstream MoQT sessions."""

    def __init__(self, resolver: MoqRecursiveResolver) -> None:
        self._resolver = resolver

    def handle_subscribe(self, session: MoqtSession, message: Subscribe) -> SubscribeResult | None:
        return self._resolver._handle_downstream_subscribe(session, message)

    def handle_fetch(
        self, session: MoqtSession, message: Fetch, full_track_name: FullTrackName | None
    ) -> FetchResult | None:
        return self._resolver._handle_downstream_fetch(session, message, full_track_name)
