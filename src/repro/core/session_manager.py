"""Upstream QUIC/MoQT session management: reuse and 0-RTT (§5.2).

The paper's first two latency optimisations are implemented here:

* **Connection and session reuse** — the manager keeps one MoQT session per
  upstream address and hands it to every lookup that needs that server, so
  only the first lookup pays connection and session establishment.
* **0-RTT resumption** — the manager shares a single
  :class:`~repro.quic.tls.SessionTicketStore` across all connections of its
  endpoint, so re-connecting to a previously visited server sends the request
  in the first flight.

A third knob, ``alpn_version_negotiation``, models the future MoQT change of
moving version negotiation into ALPN so that requests need not wait for
SERVER_SETUP (§5.2, third optimisation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.moqt.session import MoqtSession, MoqtSessionConfig
from repro.netsim.node import Host
from repro.netsim.packet import Address
from repro.quic.connection import ConnectionConfig, QuicConnection
from repro.quic.endpoint import QuicEndpoint

MOQT_ALPN = "moq-00"


@dataclass
class SessionManagerConfig:
    """Behavioural knobs of the session manager."""

    reuse_sessions: bool = True
    enable_0rtt: bool = True
    alpn_version_negotiation: bool = False
    keepalive_interval: float | None = 15.0
    idle_timeout: float = 60.0
    #: Seed for the QUIC retransmission timer; raise it for very-high-delay
    #: paths (deep space) so handshakes are not retransmitted prematurely.
    initial_rtt: float = 0.1


@dataclass
class SessionManagerStatistics:
    """Counters of upstream session usage."""

    sessions_created: int = 0
    sessions_reused: int = 0
    zero_rtt_attempts: int = 0
    sessions_closed: int = 0


class UpstreamSessionManager:
    """Manages MoQT client sessions to upstream servers."""

    def __init__(
        self,
        host: Host,
        config: SessionManagerConfig | None = None,
        session_config: MoqtSessionConfig | None = None,
    ) -> None:
        self.host = host
        self.simulator = host.simulator
        self.config = config if config is not None else SessionManagerConfig()
        self._session_config = session_config if session_config is not None else MoqtSessionConfig(
            alpn_version_negotiation=self.config.alpn_version_negotiation
        )
        self.statistics = SessionManagerStatistics()
        self._endpoint = QuicEndpoint(host)
        self._sessions: dict[Address, MoqtSession] = {}

    @property
    def endpoint(self) -> QuicEndpoint:
        """The client QUIC endpoint (shared ticket store lives here)."""
        return self._endpoint

    def session_count(self) -> int:
        """Number of currently open upstream sessions."""
        return sum(1 for session in self._sessions.values() if not session.closed)

    def sessions(self) -> dict[Address, MoqtSession]:
        """All managed sessions keyed by upstream address."""
        return dict(self._sessions)

    def get_session(self, upstream: Address) -> MoqtSession:
        """Return an open session to ``upstream``, creating one if needed."""
        session = self._sessions.get(upstream)
        if session is not None and not session.closed and self.config.reuse_sessions:
            self.statistics.sessions_reused += 1
            return session
        if session is not None and session.closed:
            self.statistics.sessions_closed += 1
        session = self._create_session(upstream)
        self._sessions[upstream] = session
        return session

    def _create_session(self, upstream: Address) -> MoqtSession:
        had_ticket = self._endpoint.ticket_store.get(upstream.host, self.simulator.now) is not None
        connection = self._endpoint.connect(
            upstream,
            ConnectionConfig(
                alpn_protocols=(MOQT_ALPN,),
                enable_0rtt=self.config.enable_0rtt,
                keepalive_interval=self.config.keepalive_interval,
                idle_timeout=self.config.idle_timeout,
                initial_rtt=self.config.initial_rtt,
            ),
        )
        if had_ticket and self.config.enable_0rtt:
            self.statistics.zero_rtt_attempts += 1
        session = MoqtSession(connection, is_client=True, config=self._session_config)
        self.statistics.sessions_created += 1
        return session

    def close_session(self, upstream: Address, reason: str = "teardown") -> bool:
        """Close the session to ``upstream`` if one exists."""
        session = self._sessions.pop(upstream, None)
        if session is None:
            return False
        if not session.closed:
            session.close(reason)
        self.statistics.sessions_closed += 1
        return True

    def close_all(self) -> None:
        """Close every managed session."""
        for upstream in list(self._sessions):
            self.close_session(upstream)

    def state_summary(self) -> dict[str, int]:
        """State-overhead accounting used by the §5.1 experiment."""
        open_sessions = [s for s in self._sessions.values() if not s.closed]
        return {
            "open_connections": len(open_sessions),
            "open_sessions": len(open_sessions),
            "subscriptions": sum(
                1
                for session in open_sessions
                for subscription in session.subscriptions()
                if subscription.state in ("pending", "active")
            ),
        }
