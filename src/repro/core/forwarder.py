"""The DNS-over-MoQT forwarder (§5 of the paper).

The forwarder is the prototype's stand-in for a native MoQT stub resolver:
it runs on (or next to) the client device, accepts classic DNS-over-UDP
queries from unmodified applications and operating-system stubs, and
forwards them over MoQT to a recursive resolver.  Each distinct question
becomes a subscription, so after the first lookup the forwarder holds the
latest version of the record locally and answers subsequent queries without
any network traffic at all — the "browser can start loading immediately"
scenario of §5.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.encapsulation import decapsulate_response
from repro.core.mapping import DnsQuestionKey, question_to_track
from repro.core.errors import MappingError
from repro.core.session_manager import SessionManagerConfig, UpstreamSessionManager
from repro.core.subscription import SubscriptionRegistry, TeardownPolicy
from repro.dns.message import Message, make_response
from repro.dns.types import DNS_UDP_PORT, Rcode
from repro.dns.transport import DnsUdpEndpoint
from repro.moqt.objectmodel import MoqtObject
from repro.moqt.session import MoqtSessionConfig
from repro.netsim.node import Host
from repro.netsim.packet import Address
from repro.netsim.simulator import Timer


@dataclass
class ForwarderConfig:
    """Behavioural knobs of the forwarder.

    ``listen_port`` may be ``None`` to disable the classic DNS listener, in
    which case the instance acts as a pure library-level MoQT stub resolver
    (see :class:`repro.core.stub.MoqStubResolver`).
    """

    listen_port: int | None = DNS_UDP_PORT
    upstream_timeout: float = 3.0
    session_manager: SessionManagerConfig = field(default_factory=SessionManagerConfig)
    moqt_session: MoqtSessionConfig = field(default_factory=MoqtSessionConfig)


@dataclass
class ForwarderRecord:
    """Locally held state for one subscribed question."""

    key: DnsQuestionKey
    message: Message
    version: int
    updated_at: float
    pushed_updates: int = 0


@dataclass
class ForwarderStatistics:
    """Counters kept by the forwarder."""

    client_queries: int = 0
    local_answers: int = 0
    upstream_lookups: int = 0
    pushes_received: int = 0
    failures: int = 0


class MoqForwarder:
    """Forwards classic DNS queries over MoQT to a recursive resolver."""

    def __init__(
        self,
        host: Host,
        recursive_moqt_address: Address,
        config: ForwarderConfig | None = None,
        teardown_policy: TeardownPolicy | None = None,
    ) -> None:
        self.host = host
        self.simulator = host.simulator
        self.config = config if config is not None else ForwarderConfig()
        self.upstream_address = recursive_moqt_address
        self.statistics = ForwarderStatistics()
        self.registry = SubscriptionRegistry(teardown_policy)
        self.sessions = UpstreamSessionManager(
            host, config=self.config.session_manager, session_config=self.config.moqt_session
        )
        self._records: dict[DnsQuestionKey, ForwarderRecord] = {}
        self._in_flight: dict[DnsQuestionKey, list[Callable[[Message | None, int], None]]] = {}
        self._server: DnsUdpEndpoint | None = None
        if self.config.listen_port is not None:
            self._server = DnsUdpEndpoint(
                host, port=self.config.listen_port, handler=self._handle_client_query
            )
        #: Callbacks invoked with (key, record) whenever a pushed update arrives;
        #: applications (and the staleness experiment) can watch record changes.
        self.on_record_updated: list[Callable[[DnsQuestionKey, ForwarderRecord], None]] = []

    @property
    def address(self) -> Address | None:
        """Address classic clients should query (None when UDP serving is off)."""
        return self._server.address if self._server is not None else None

    # ---------------------------------------------------------------- records
    def record(self, key: DnsQuestionKey) -> ForwarderRecord | None:
        """The forwarder's current state for a question, if subscribed."""
        return self._records.get(key)

    def records(self) -> dict[DnsQuestionKey, ForwarderRecord]:
        """All locally held records."""
        return dict(self._records)

    def state_summary(self) -> dict[str, int]:
        """State-overhead accounting (§5.1)."""
        summary = self.sessions.state_summary()
        summary["records"] = len(self._records)
        summary["tracked_questions"] = self.registry.state_size()
        return summary

    def run_teardown(self) -> int:
        """Apply the teardown policy to locally held subscriptions (§4.4)."""
        victims = self.registry.collect_victims(self.simulator.now)
        for victim in victims:
            self._records.pop(victim.key, None)
        return len(victims)

    # ---------------------------------------------------------------- serving
    def _handle_client_query(self, query: Message, source: Address, respond) -> None:
        self.statistics.client_queries += 1
        if not query.questions:
            respond(make_response(query, rcode=Rcode.FORMERR))
            return
        key = DnsQuestionKey.from_message(query)
        self.registry.record_lookup(key, self.simulator.now)
        existing = self._records.get(key)
        if existing is not None:
            # Subscribed questions are always up to date: answer locally.
            self.statistics.local_answers += 1
            respond(self._build_response(query, existing.message))
            return

        def finished(message: Message | None, version: int) -> None:
            if message is None:
                self.statistics.failures += 1
                respond(make_response(query, rcode=Rcode.SERVFAIL, recursion_available=True))
                return
            respond(self._build_response(query, message))

        self._lookup_upstream(key, finished)

    def _build_response(self, query: Message, answer: Message) -> Message:
        return make_response(
            query,
            answers=answer.answers,
            authorities=answer.authorities,
            additionals=answer.additionals,
            rcode=answer.rcode,
            recursion_available=True,
        )

    # ------------------------------------------------------------- upstream IO
    def resolve(
        self, key: DnsQuestionKey, callback: Callable[[Message | None, int], None]
    ) -> None:
        """Programmatic lookup API (used by examples and experiments)."""
        self.registry.record_lookup(key, self.simulator.now)
        existing = self._records.get(key)
        if existing is not None:
            self.statistics.local_answers += 1
            callback(existing.message, existing.version)
            return
        self._lookup_upstream(key, callback)

    def _lookup_upstream(
        self, key: DnsQuestionKey, callback: Callable[[Message | None, int], None]
    ) -> None:
        waiters = self._in_flight.get(key)
        if waiters is not None:
            waiters.append(callback)
            return
        self._in_flight[key] = [callback]
        self.statistics.upstream_lookups += 1
        session = self.sessions.get_session(self.upstream_address)
        track = question_to_track(key)
        finished = {"done": False}
        timeout = Timer(self.simulator, lambda: complete(None, 0))

        def complete(message: Message | None, version: int) -> None:
            if finished["done"]:
                return
            finished["done"] = True
            timeout.stop()
            if message is not None:
                self._records[key] = ForwarderRecord(
                    key=key, message=message, version=version, updated_at=self.simulator.now
                )
            callbacks = self._in_flight.pop(key, [])
            for waiting in callbacks:
                waiting(message, version)

        def on_push(obj: MoqtObject) -> None:
            self._on_push(key, obj)

        def on_sub_response(subscription) -> None:
            if subscription.state == "error":
                # The recursive resolver declined the subscription (§4.5);
                # the fetch may still deliver a one-shot answer.
                pass

        subscription = session.subscribe(track, on_object=on_push, on_response=on_sub_response)

        def on_fetch_complete(fetch_request) -> None:
            if not fetch_request.succeeded or not fetch_request.objects:
                complete(None, 0)
                return
            obj = fetch_request.objects[-1]
            try:
                message = decapsulate_response(obj)
            except MappingError:
                complete(None, 0)
                return
            self.registry.record_update(key, self.simulator.now, obj.group_id)
            complete(message, obj.group_id)

        session.joining_fetch(subscription, 1, on_complete=on_fetch_complete)
        timeout.start(self.config.upstream_timeout)

    def _on_push(self, key: DnsQuestionKey, obj: MoqtObject) -> None:
        """A record update pushed by the recursive resolver."""
        self.statistics.pushes_received += 1
        try:
            message = decapsulate_response(obj)
        except MappingError:
            return
        record = self._records.get(key)
        if record is None:
            record = ForwarderRecord(
                key=key, message=message, version=obj.group_id, updated_at=self.simulator.now
            )
            self._records[key] = record
        else:
            if obj.group_id <= record.version:
                return
            record.message = message
            record.version = obj.group_id
            record.updated_at = self.simulator.now
        record.pushed_updates += 1
        self.registry.record_update(key, self.simulator.now, obj.group_id)
        for listener in self.on_record_updated:
            listener(key, record)
