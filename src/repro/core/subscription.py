"""Subscription state management and teardown policies (§4.4).

Resolvers that speak DNS over MoQT must track which DNS questions they are
subscribed to, when those subscriptions were last useful, and when to drop
them.  The paper points out the trade-off: keeping subscriptions costs state
(and leaves a privacy trail), dropping them early forces a new session and
subscription on the next lookup.

:class:`SubscriptionRegistry` keeps per-track bookkeeping (lookup counts,
last use, last pushed update, last known group ID for resumption after
reconnects) and applies a pluggable :class:`TeardownPolicy`:

* :class:`NeverTearDown` — keep everything (maximum freshness, maximum state);
* :class:`IdleTimeoutPolicy` — drop tracks not looked up for a fixed period;
* :class:`LruBudgetPolicy` — keep at most N tracks, dropping the least
  recently used;
* :class:`AdaptivePolicy` — the paper's suggestion of adapting to lookup
  history: tracks that are looked up frequently get a longer retention
  period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.mapping import DnsQuestionKey


@dataclass
class TrackedSubscription:
    """Bookkeeping for one subscribed DNS question."""

    key: DnsQuestionKey
    created_at: float
    last_lookup_at: float
    lookups: int = 1
    updates_received: int = 0
    last_update_at: float | None = None
    last_group_id: int | None = None

    def record_lookup(self, now: float) -> None:
        """Note that a client asked for this question again."""
        self.lookups += 1
        self.last_lookup_at = now

    def record_update(self, now: float, group_id: int) -> None:
        """Note a pushed update for this question."""
        self.updates_received += 1
        self.last_update_at = now
        if self.last_group_id is None or group_id > self.last_group_id:
            self.last_group_id = group_id

    def lookup_rate(self, now: float) -> float:
        """Average lookups per second since creation."""
        elapsed = max(now - self.created_at, 1e-9)
        return self.lookups / elapsed


class TeardownPolicy:
    """Decides which subscriptions to drop; subclasses override :meth:`select_victims`."""

    name = "base"

    def select_victims(
        self, subscriptions: Iterable[TrackedSubscription], now: float
    ) -> list[TrackedSubscription]:
        """Return the subscriptions that should be torn down now."""
        raise NotImplementedError


class NeverTearDown(TeardownPolicy):
    """Keep every subscription for the lifetime of the resolver."""

    name = "never"

    def select_victims(
        self, subscriptions: Iterable[TrackedSubscription], now: float
    ) -> list[TrackedSubscription]:
        return []


class IdleTimeoutPolicy(TeardownPolicy):
    """Drop subscriptions that have not been looked up for ``idle_timeout`` seconds."""

    name = "idle-timeout"

    def __init__(self, idle_timeout: float = 3600.0) -> None:
        if idle_timeout <= 0:
            raise ValueError(f"idle_timeout must be positive: {idle_timeout}")
        self.idle_timeout = idle_timeout

    def select_victims(
        self, subscriptions: Iterable[TrackedSubscription], now: float
    ) -> list[TrackedSubscription]:
        return [
            subscription
            for subscription in subscriptions
            if now - subscription.last_lookup_at >= self.idle_timeout
        ]


class LruBudgetPolicy(TeardownPolicy):
    """Keep at most ``budget`` subscriptions, evicting the least recently used."""

    name = "lru-budget"

    def __init__(self, budget: int = 1000) -> None:
        if budget <= 0:
            raise ValueError(f"budget must be positive: {budget}")
        self.budget = budget

    def select_victims(
        self, subscriptions: Iterable[TrackedSubscription], now: float
    ) -> list[TrackedSubscription]:
        ordered = sorted(subscriptions, key=lambda s: s.last_lookup_at)
        excess = len(ordered) - self.budget
        return ordered[:excess] if excess > 0 else []


class AdaptivePolicy(TeardownPolicy):
    """Retention proportional to observed lookup frequency.

    A track looked up often earns a retention period of
    ``base_retention * min(lookups, cap)``; rarely used tracks fall back to
    the base retention.  This models the paper's suggestion of adapting the
    clean-up dynamics to how likely a domain is to be requested again.
    """

    name = "adaptive"

    def __init__(self, base_retention: float = 600.0, cap: int = 32) -> None:
        if base_retention <= 0:
            raise ValueError(f"base_retention must be positive: {base_retention}")
        self.base_retention = base_retention
        self.cap = cap

    def retention_for(self, subscription: TrackedSubscription) -> float:
        """The retention period earned by a subscription."""
        return self.base_retention * min(subscription.lookups, self.cap)

    def select_victims(
        self, subscriptions: Iterable[TrackedSubscription], now: float
    ) -> list[TrackedSubscription]:
        return [
            subscription
            for subscription in subscriptions
            if now - subscription.last_lookup_at >= self.retention_for(subscription)
        ]


@dataclass
class RegistryStatistics:
    """Counters kept by the registry."""

    tracked: int = 0
    torn_down: int = 0
    resumptions: int = 0


class SubscriptionRegistry:
    """Tracks the DNS questions a resolver is subscribed to.

    The registry is passive: the resolver records lookups and updates, and
    periodically calls :meth:`collect_victims` with the configured policy to
    learn which subscriptions to unsubscribe.  The last known group ID is
    retained even after teardown so a later re-subscription can resume with a
    fetch from that version (§4.4).
    """

    def __init__(self, policy: TeardownPolicy | None = None) -> None:
        self.policy = policy if policy is not None else NeverTearDown()
        self.statistics = RegistryStatistics()
        self._active: dict[DnsQuestionKey, TrackedSubscription] = {}
        self._last_known_group: dict[DnsQuestionKey, int] = {}

    def __len__(self) -> int:
        return len(self._active)

    def active(self) -> list[TrackedSubscription]:
        """All currently tracked subscriptions."""
        return list(self._active.values())

    def get(self, key: DnsQuestionKey) -> TrackedSubscription | None:
        """The tracked subscription for a question, if any."""
        return self._active.get(key)

    def record_lookup(self, key: DnsQuestionKey, now: float) -> TrackedSubscription:
        """Record a client lookup, creating the tracking entry if needed."""
        subscription = self._active.get(key)
        if subscription is None:
            subscription = TrackedSubscription(key=key, created_at=now, last_lookup_at=now)
            self._active[key] = subscription
            self.statistics.tracked += 1
            if key in self._last_known_group:
                subscription.last_group_id = self._last_known_group[key]
                self.statistics.resumptions += 1
        else:
            subscription.record_lookup(now)
        return subscription

    def record_update(self, key: DnsQuestionKey, now: float, group_id: int) -> None:
        """Record a pushed update for a question (ignored if not tracked)."""
        subscription = self._active.get(key)
        if subscription is not None:
            subscription.record_update(now, group_id)
        self._last_known_group[key] = max(self._last_known_group.get(key, -1), group_id)

    def collect_victims(self, now: float) -> list[TrackedSubscription]:
        """Apply the policy and remove (and return) the victims."""
        victims = self.policy.select_victims(self._active.values(), now)
        for victim in victims:
            self._active.pop(victim.key, None)
            if victim.last_group_id is not None:
                self._last_known_group[victim.key] = victim.last_group_id
            self.statistics.torn_down += 1
        return victims

    def last_known_group(self, key: DnsQuestionKey) -> int | None:
        """The last group ID seen for a question (survives teardown)."""
        return self._last_known_group.get(key)

    def state_size(self) -> int:
        """Number of active subscriptions (the §5.1 state metric)."""
        return len(self._active)
