"""Errors raised by the DNS-over-MoQT layer."""

from __future__ import annotations


class DnsMoqError(Exception):
    """Base class for DNS-over-MoQT errors."""


class MappingError(DnsMoqError):
    """Raised when a DNS question cannot be mapped to a MoQT track (or back)."""


class UpstreamError(DnsMoqError):
    """Raised when an upstream server cannot be reached or answers badly."""
