"""Encapsulating DNS responses in MoQT objects (Fig. 4).

A DNS response message is carried verbatim as the payload of a MoQT object.
The object metadata encodes the versioning scheme of §4.2:

* the *group ID* is the zone version number (a strictly monotonically
  increasing integer maintained by the authoritative server, bumped on every
  zone change);
* the *object ID* is always zero — DNS over MoQT has no notion of multiple
  objects per group;
* the *subgroup ID* is always zero.

Because the DNS message ID is connection-specific, it is always set to zero
inside encapsulated responses so that two subscribers of the same track see
byte-identical objects, as MoQT requires.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.errors import MappingError
from repro.dns.message import Header, Message
from repro.moqt.objectmodel import MoqtObject

#: Object ID used for every DNS object (§4.3: groups contain one object).
DNS_OBJECT_ID = 0


def normalize_response(message: Message) -> Message:
    """Zero out connection-specific header fields of a response.

    The message ID has no meaning in a pub/sub track shared by many
    subscribers; normalising it guarantees identical payloads for identical
    record versions.
    """
    header = Header(
        message_id=0,
        flags=message.header.flags,
        opcode=message.header.opcode,
        rcode=message.header.rcode,
    )
    return Message(
        header=header,
        questions=list(message.questions),
        answers=list(message.answers),
        authorities=list(message.authorities),
        additionals=list(message.additionals),
    )


def encapsulate_response(message: Message, zone_version: int) -> MoqtObject:
    """Wrap a DNS response in a MoQT object for the given zone version."""
    if zone_version < 0:
        raise MappingError(f"zone version must be non-negative: {zone_version}")
    normalized = normalize_response(message)
    return MoqtObject(
        group_id=zone_version,
        object_id=DNS_OBJECT_ID,
        payload=normalized.to_wire(),
    )


def decapsulate_response(obj: MoqtObject) -> Message:
    """Extract the DNS response message from a MoQT object."""
    try:
        return Message.from_wire(obj.payload)
    except Exception as error:
        raise MappingError(f"object payload is not a DNS message: {error}") from None


def response_version(obj: MoqtObject) -> int:
    """The zone version a DNS object was published under (its group ID)."""
    return obj.group_id
