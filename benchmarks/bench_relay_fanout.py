"""Benchmark the relay fan-out experiment (E11, §3/§5.3).

Times the three-tier CDN hierarchy at growing subscriber counts and attaches
the measured-vs-model table.  The assertions pin the paper's scalability
claim: origin egress stays at O(branching factor) while the subscriber
population — and the unicast baseline — grows by two orders of magnitude.
"""

from __future__ import annotations

from conftest import attach

from repro.experiments.relay_fanout import run_relay_fanout
from repro.experiments.report import format_table


def test_relay_fanout_tree(benchmark):
    """§3: a 3-tier relay tree keeps origin egress independent of subscribers."""

    def run():
        return run_relay_fanout(subscriber_counts=(10, 100, 1000), updates=5)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = format_table(result.rows())
    tiers = format_table(result.tier_rows())
    attach(benchmark, fanout_table=summary, tier_table=tiers,
           bytes_per_update=result.bytes_per_update)
    print("\nE11 — relay fan-out (origin egress vs subscriber count)\n" + summary)
    print("\nPer-tier link traffic, measured vs model\n" + tiers)

    first, last = result.samples[0], result.samples[-1]
    # Origin egress is O(branching factor): identical across a 100x
    # subscriber range, while the unicast baseline grows linearly.
    assert first.measured_origin_objects == last.measured_origin_objects
    assert last.model.unicast_messages == 100 * first.model.unicast_messages
    for sample in result.samples:
        assert sample.delivered_objects == sample.subscribers * sample.updates
        assert sample.max_tier_byte_deviation <= 0.10
