"""Fast-path performance harness: micro + macro benchmarks with JSON output.

Three micro/macro layers cover the simulation fast path end to end:

* ``event_loop_churn`` — raw scheduler throughput: schedule/run/cancel churn
  through :class:`repro.netsim.simulator.Simulator`, including heavy timer
  cancellation so lazy deletion and heap compaction are on the measured path;
* ``varint_roundtrip`` — codec throughput: QUIC varint encode/decode over the
  RFC 9000 size classes, plus reader/writer round-trips;
* ``relay_fanout_e11`` — the E11 relay fan-out experiment (three-tier CDN
  tree, 1,000 subscribers) measured end to end, wall-clock;
* ``cdn_macro_10k`` — the 10,000-subscriber CDN-tree macro-benchmark.  It
  asserts the paper's origin-egress invariant: origin egress is
  O(branching factor) and must match the 1,000-subscriber run byte for byte
  even though the subscriber population grew 10x;
* ``relay_churn`` — the E12 churn macro-benchmark: kill a mid-tier and an
  edge relay under a live 1,000-subscriber CDN run and assert the delivery
  contract survives (every subscriber sees a gapless, duplicate-free,
  in-order sequence; re-attach latency matches the closed-form model);
* ``failure_detection`` — the E13 in-band detection macro-benchmark: crash
  a mid-tier and an edge relay *silently* (zero control-plane kill signals)
  and assert delivery stays gapless end to end with failover driven purely
  by QUIC liveness (PTO-suspect and idle-timeout paths, both matching the
  closed-form detection model).

Results are written to ``BENCH_fastpath.json`` (schema documented in
``benchmarks/perf/README.md``) so the performance trajectory of the repo is
machine-readable and CI can archive it per commit.

Usage::

    PYTHONPATH=src python benchmarks/perf/perf_fastpath.py
    PYTHONPATH=src python benchmarks/perf/perf_fastpath.py --smoke
    PYTHONPATH=src python benchmarks/perf/perf_fastpath.py --output out.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.experiments.failure_detection import run_failure_detection
from repro.experiments.relay_churn import run_relay_churn
from repro.experiments.relay_fanout import run_relay_fanout
from repro.netsim.simulator import Simulator, Timer
from repro.quic.varint import (
    MAX_VARINT,
    VarintReader,
    VarintWriter,
    decode_varint,
    encode_varint,
)

SCHEMA = "bench-fastpath/v3"

#: Varint corpus: RFC 9000 boundary values of every size class plus
#: mid-range representatives.
VARINT_CORPUS = (
    0,
    1,
    37,
    63,
    64,
    15293,
    16383,
    16384,
    494878333,
    (1 << 30) - 1,
    1 << 30,
    151288809941952652,
    MAX_VARINT,
)


def bench_event_loop_churn(events: int = 200_000) -> dict[str, object]:
    """Scheduler throughput with cancellation churn.

    Half of the scheduled callbacks are cancelled before they run — the
    pattern produced by per-packet retransmission/idle timers — so the
    lazy-deletion skip and the >50%-dead heap compaction are both exercised.
    """
    simulator = Simulator(seed=1)
    executed = [0]

    def tick() -> None:
        executed[0] += 1

    start = time.perf_counter()
    pending = []
    for index in range(events):
        event = simulator.call_later((index % 97) * 1e-4, tick)
        pending.append(event)
        if index % 2 == 0:
            pending[len(pending) // 2].cancel()
    simulator.run_until_idle(max_events=events + 1)
    # Timer restart churn: one timer re-armed many times only fires once.
    timer_fired = [0]
    timer = Timer(simulator, lambda: timer_fired.__setitem__(0, timer_fired[0] + 1))
    for index in range(10_000):
        timer.start(0.5 + index * 1e-5)
    simulator.run_until_idle()
    elapsed = time.perf_counter() - start
    return {
        "scheduled": events + 10_000,
        "executed": executed[0],
        "timer_fired": timer_fired[0],
        "seconds": round(elapsed, 6),
        "events_per_second": round((events + 10_000) / elapsed),
    }


def bench_varint_roundtrip(rounds: int = 40_000) -> dict[str, object]:
    """Encode+decode throughput over the boundary-value corpus."""
    corpus = VARINT_CORPUS
    start = time.perf_counter()
    operations = 0
    for _ in range(rounds):
        for value in corpus:
            encoded = encode_varint(value)
            decoded, _ = decode_varint(encoded)
            if decoded != value:  # pragma: no cover - would be a codec bug
                raise AssertionError(f"round-trip mismatch for {value}")
            operations += 2
    # Reader/writer batch round-trip (the packet/message codec shape).
    writer = VarintWriter()
    for value in corpus:
        writer.write_varint(value)
    blob = writer.getvalue()
    for _ in range(rounds // 10):
        reader = VarintReader(blob)
        for value in corpus:
            if reader.read_varint() != value:  # pragma: no cover
                raise AssertionError("reader mismatch")
        operations += len(corpus)
    elapsed = time.perf_counter() - start
    return {
        "operations": operations,
        "seconds": round(elapsed, 6),
        "ops_per_second": round(operations / elapsed),
    }


def bench_relay_fanout_e11(subscribers: int = 1000, updates: int = 5) -> dict[str, object]:
    """Wall-clock of the E11 fan-out experiment at the benchmark scale."""
    start = time.perf_counter()
    result = run_relay_fanout(subscriber_counts=(subscribers,), updates=updates)
    elapsed = time.perf_counter() - start
    sample = result.samples[0]
    row = sample.as_row()
    return {
        "subscribers": subscribers,
        "updates": updates,
        "seconds": round(elapsed, 6),
        "delivered_objects": row["delivered"],
        "expected_objects": row["expected"],
        "origin_objects": row["origin_objects"],
        "origin_egress_bytes": row["origin_bytes"],
        "max_tier_byte_deviation": row["max_tier_dev"],
        "tier_bytes": list(sample.measured_tier_bytes),
    }


def bench_cdn_macro_10k(subscribers: int = 10_000, updates: int = 5) -> dict[str, object]:
    """10,000-subscriber CDN-tree macro-benchmark with the egress invariant.

    Origin egress must be O(branching factor): identical to the
    1,000-subscriber run (same tree, same updates) despite 10x subscribers.
    """
    reference = run_relay_fanout(subscriber_counts=(1000,), updates=updates)
    start = time.perf_counter()
    result = run_relay_fanout(subscriber_counts=(subscribers,), updates=updates)
    elapsed = time.perf_counter() - start
    sample = result.samples[0]
    reference_sample = reference.samples[0]
    invariant_ok = (
        sample.measured_origin_objects == reference_sample.measured_origin_objects
        and sample.origin_egress_bytes == reference_sample.origin_egress_bytes
        and sample.delivered_objects == subscribers * updates
    )
    return {
        "subscribers": subscribers,
        "updates": updates,
        "seconds": round(elapsed, 6),
        "delivered_objects": sample.delivered_objects,
        "origin_objects": sample.measured_origin_objects,
        "origin_egress_bytes": sample.origin_egress_bytes,
        "reference_origin_egress_bytes": reference_sample.origin_egress_bytes,
        "origin_egress_invariant_ok": invariant_ok,
        "max_tier_byte_deviation": sample.max_tier_byte_deviation,
    }


def bench_relay_churn(subscribers: int = 1000) -> dict[str, object]:
    """E12 churn macro-benchmark: relay kills under a live CDN run.

    Wall-clock covers the whole experiment (build, subscribe, twelve pushed
    updates, a mid-tier kill and an edge kill, recovery, drain).  The
    correctness fields are machine-independent: delivery must stay gapless
    and duplicate-free for every subscriber, and the per-tier re-attach
    latencies must match the closed-form recovery model.
    """
    start = time.perf_counter()
    result = run_relay_churn(subscribers=subscribers)
    elapsed = time.perf_counter() - start
    reattach: dict[str, dict[str, float]] = {}
    model_ok = True
    failover_complete = all(kill.complete for kill in result.kills)
    for kill in result.kills:
        for row in kill.rows():
            # One entry per (killed relay, orphan tier): two kills orphaning
            # the same tier must not overwrite each other's measurements.
            reattach[f"{kill.killed}:{row['orphan_tier']}"] = {
                "orphans": row["orphans"],
                "mean_ms": row["reattach_ms_mean"],
                "max_ms": row["reattach_ms_max"],
                "model_ms": row["model_ms"],
            }
            if (
                row["reattach_ms_max"] != row["model_ms"]
                or row["reattach_ms_mean"] != row["model_ms"]
            ):
                model_ok = False
    return {
        "subscribers": subscribers,
        "updates": result.updates,
        "kills": len(result.kills),
        "seconds": round(elapsed, 6),
        "delivered_objects": result.delivered_objects,
        "expected_objects": result.expected_objects,
        "gapless_subscribers": result.gapless_subscribers,
        "gapless_ok": result.gapless,
        "duplicates_dropped": (
            result.relay_duplicates_dropped + result.subscriber_duplicates_dropped
        ),
        "recovery_fetches": result.recovery_fetches + result.subscriber_gap_fetches,
        "recovered_objects": result.recovered_objects,
        "reattach_latency": reattach,
        "reattach_model_ok": model_ok,
        "failover_complete_ok": failover_complete,
    }


def bench_failure_detection(subscribers: int = 1000) -> dict[str, object]:
    """E13 macro-benchmark: silent crashes, failover purely in-band.

    No control-plane kill signal is issued; a mid-tier relay crash must be
    detected through keepalive probe timeouts (PTO-suspect path) and an
    edge crash through the subscribers' idle timers (idle-timeout path).
    The correctness fields are machine-independent: delivery must stay
    gapless end to end, both measured detection latencies must match the
    closed-form model in ``repro.analysis.detection``, and every orphan
    must re-attach on the 3-RTT floor after detection.
    """
    start = time.perf_counter()
    result = run_failure_detection(subscribers=subscribers)
    elapsed = time.perf_counter() - start
    detection: dict[str, dict[str, object]] = {}
    for sample in result.samples:
        detection[sample.killed] = {
            "path": sample.detected_via,
            "model_path": sample.model_path,
            "detect_ms": round(sample.detection_latency * 1000, 3),
            "model_ms": round(sample.model_detection_latency * 1000, 3),
            "orphans": sample.orphan_relays + sample.orphan_subscribers,
            "complete": sample.complete,
        }
    return {
        "subscribers": subscribers,
        "updates": result.updates,
        "crashes": len(result.samples),
        "control_plane_kills": result.control_plane_kills,
        "seconds": round(elapsed, 6),
        "delivered_objects": result.delivered_objects,
        "expected_objects": result.expected_objects,
        "gapless_subscribers": result.gapless_subscribers,
        "gapless_ok": result.gapless,
        "duplicates_dropped": (
            result.relay_duplicates_dropped + result.subscriber_duplicates_dropped
        ),
        "recovery_fetches": result.recovery_fetches + result.subscriber_gap_fetches,
        "false_positive_events": result.false_positive_events,
        "detection_latency": detection,
        "detection_model_ok": result.detection_model_ok,
        "reattach_model_ok": result.reattach_model_ok,
        "failover_complete_ok": all(sample.complete for sample in result.samples)
        and len(result.samples) == 2,
    }


def run(smoke: bool = False, skip_macro: bool = False) -> dict[str, object]:
    """Run the harness and return the result document."""
    benchmarks: dict[str, object] = {}
    benchmarks["event_loop_churn"] = bench_event_loop_churn(
        events=50_000 if smoke else 200_000
    )
    benchmarks["varint_roundtrip"] = bench_varint_roundtrip(rounds=8_000 if smoke else 40_000)
    benchmarks["relay_fanout_e11"] = bench_relay_fanout_e11(
        subscribers=200 if smoke else 1000
    )
    benchmarks["relay_churn"] = bench_relay_churn(subscribers=200 if smoke else 1000)
    benchmarks["failure_detection"] = bench_failure_detection(
        subscribers=200 if smoke else 1000
    )
    if not skip_macro and not smoke:
        benchmarks["cdn_macro_10k"] = bench_cdn_macro_10k()
    return {
        "schema": SCHEMA,
        "generated_unix": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "smoke": smoke,
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="BENCH_fastpath.json",
        help="path of the JSON result document (default: ./BENCH_fastpath.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced iteration counts and no 10k macro run (CI smoke budget)",
    )
    parser.add_argument(
        "--skip-macro",
        action="store_true",
        help="skip the 10,000-subscriber macro-benchmark",
    )
    args = parser.parse_args(argv)
    document = run(smoke=args.smoke, skip_macro=args.skip_macro)
    output = Path(args.output)
    output.write_text(json.dumps(document, indent=2) + "\n")
    json.dump(document["benchmarks"], sys.stdout, indent=2)
    print()
    macro = document["benchmarks"].get("cdn_macro_10k")
    if macro is not None and not macro["origin_egress_invariant_ok"]:
        print("FAIL: origin egress grew with subscriber count", file=sys.stderr)
        return 1
    churn = document["benchmarks"]["relay_churn"]
    if not churn["gapless_ok"]:
        print("FAIL: relay churn broke gapless delivery", file=sys.stderr)
        return 1
    if not churn["failover_complete_ok"]:
        print("FAIL: relay churn left orphans unattached", file=sys.stderr)
        return 1
    detection = document["benchmarks"]["failure_detection"]
    if not detection["gapless_ok"]:
        print("FAIL: in-band failure detection broke gapless delivery", file=sys.stderr)
        return 1
    if not detection["failover_complete_ok"]:
        print("FAIL: in-band detection left orphans unattached", file=sys.stderr)
        return 1
    if not (detection["detection_model_ok"] and detection["reattach_model_ok"]):
        print("FAIL: detection latency diverged from the closed-form model", file=sys.stderr)
        return 1
    if detection["control_plane_kills"] or detection["false_positive_events"]:
        print("FAIL: in-band run used control-plane signals or false positives", file=sys.stderr)
        return 1
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
