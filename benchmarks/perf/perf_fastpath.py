"""Fast-path performance harness: micro + macro benchmarks with JSON output.

Micro and macro layers cover the simulation fast path end to end:

* ``event_loop_churn`` — raw scheduler throughput: schedule/run/cancel churn
  through :class:`repro.netsim.simulator.Simulator`, including heavy timer
  cancellation so lazy deletion and heap compaction are on the measured path;
* ``varint_roundtrip`` — codec throughput: QUIC varint encode/decode over the
  RFC 9000 size classes, plus reader/writer round-trips;
* ``relay_fanout_e11`` — the E11 relay fan-out experiment (three-tier CDN
  tree, 1,000 subscribers) measured end to end, wall-clock;
* ``cdn_macro_10k`` — the 10,000-subscriber CDN-tree macro-benchmark.  It
  asserts the paper's origin-egress invariant: origin egress is
  O(branching factor) and must match the 1,000-subscriber run byte for byte
  even though the subscriber population grew 10x;
* ``cdn_macro_100k`` — the 100,000-subscriber macro-benchmark (full runs
  only; ``--smoke`` keeps the 10k run as its largest macro).  Same invariant,
  two orders of magnitude above the E11 scale, exercising the allocation-free
  fan-out path: link-batch delivery, pooled datagrams and header-patch-only
  per-subscriber sends;
* ``cdn_macro_1m`` — the 1,000,000-subscriber macro-benchmark (full runs
  only), running the tree in exact aggregate-leaf mode
  (``repro.relaynet.aggregate``): each edge relay's homogeneous population
  rides one counted connection, every collected statistic is multiplied out,
  and the origin-egress invariant must hold byte-for-byte against the dense
  1,000-subscriber reference.  Gated on wall-clock (< 300 s) and peak RSS
  (< 8 GiB), measured in a forked child so the gate sees *this* macro's
  memory, not the process-lifetime maximum;
* ``relay_churn`` — the E12 churn macro-benchmark: kill a mid-tier and an
  edge relay under a live 1,000-subscriber CDN run and assert the delivery
  contract survives (every subscriber sees a gapless, duplicate-free,
  in-order sequence; re-attach latency matches the closed-form model);
* ``failure_detection`` — the E13 in-band detection macro-benchmark: crash
  a mid-tier and an edge relay *silently* (zero control-plane kill signals)
  and assert delivery stays gapless end to end with failover driven purely
  by QUIC liveness (PTO-suspect and idle-timeout paths, both matching the
  closed-form detection model);
* ``origin_failover`` — the E14 replicated-origin macro-benchmark: crash
  the *active origin* silently under a live 1,000-subscriber tree and
  assert the in-band promotion (detect -> elect -> transplant) keeps every
  subscriber gapless, with the measured promotion latency matching the
  closed-form model in ``repro.analysis.promotion`` and zero control-plane
  signals end to end;
* ``constrained_tiers_e15`` — the E15 bandwidth sweep: the E11 CDN tree on
  finite per-tier bandwidth, charting the knee where serialisation delay
  overtakes propagation.  The gates are machine-independent: every measured
  delivery time must equal the closed-form model in
  ``repro.analysis.constrained`` bit-exactly, the measured knee must land
  on the modelled knee, the lossy-edge sample must repair every drop (with
  NewReno congestion events observable), and the link-batch fallback-wave
  counter must stay zero — constrained links batching is the bugfix this
  experiment exists to pin;
* ``constrained_macro_100k`` — the lossy constrained regime at the E11
  macro population: 100,000 dense subscribers on 2 Mbit/s tiers with 0.5 %
  access loss and NewReno on every relay's downstream side.  Runs in
  ``--smoke`` (the regime the old silent per-datagram fallback made
  unrunnable must stay inside the CI smoke budget) and gates on full loss
  repair with zero fallback waves;
* ``flash_crowd`` — the E16 subscribe-storm macro-benchmark: an
  unlimited baseline whose pending-subscribe high-water mark grows with
  storm size (the unbounded-queue pathology), a token-bucket-throttled
  storm that must admit 100 % of stormers with the measured completion
  time and join-latency distribution matching the closed-form model in
  ``repro.analysis.admission`` bit-exactly (and rejections actually
  observed), and a hotspot storm pinned to one edge relay that must
  spread across sibling leaves via spillover.  All gates are
  machine-independent.

Results are written to ``BENCH_fastpath.json`` (schema documented in
``benchmarks/perf/README.md``) so the performance trajectory of the repo is
machine-readable and CI can archive it per commit.  ``--check`` compares the
micro-benchmark throughputs of the current run against a committed reference
document and exits non-zero on a regression beyond the tolerance band — the
CI ``perf-smoke`` regression gate.

Usage::

    PYTHONPATH=src python benchmarks/perf/perf_fastpath.py
    PYTHONPATH=src python benchmarks/perf/perf_fastpath.py --smoke
    PYTHONPATH=src python benchmarks/perf/perf_fastpath.py --repeat 3
    PYTHONPATH=src python benchmarks/perf/perf_fastpath.py --only cdn_macro_10k --profile
    PYTHONPATH=src python benchmarks/perf/perf_fastpath.py --smoke --check BENCH_fastpath.json
    PYTHONPATH=src python benchmarks/perf/perf_fastpath.py --metrics --output out.json
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import resource
import statistics
import sys
import time
from contextlib import contextmanager
from pathlib import Path

from repro.experiments.constrained_tiers import (
    run_constrained_macro,
    run_constrained_tiers,
)
from repro.experiments.failure_detection import run_failure_detection
from repro.experiments.flash_crowd import run_flash_crowd
from repro.experiments.origin_failover import run_origin_failover
from repro.experiments.relay_churn import run_relay_churn
from repro.experiments.relay_fanout import run_relay_fanout
from repro.netsim.simulator import Simulator, Timer
from repro.quic.varint import (
    MAX_VARINT,
    VarintReader,
    VarintWriter,
    decode_varint,
    encode_varint,
)
from repro.telemetry import MetricsRegistry, SpanTracer, Telemetry
from repro.telemetry.export import (
    spans_to_records,
    write_metrics_snapshot,
    write_prometheus,
)

SCHEMA = "bench-fastpath/v9"

#: Relative throughput loss beyond which ``--check`` fails the run.  Wide
#: enough to absorb runner-class jitter (documented in the README); narrow
#: enough to catch a real fast-path regression.
CHECK_TOLERANCE = 0.35

#: Per-(benchmark, field) tolerance overrides for ``--check``.  Macro
#: wall-clock is long (seconds to minutes) and dominated by Python-level
#: throughput, which varies more across runner classes than the tight micro
#: loops — a wider band keeps the nightly gate from flapping while still
#: catching a halving of throughput.
CHECK_TOLERANCE_OVERRIDES = {
    ("cdn_macro_10k", "seconds"): 0.75,
    ("cdn_macro_100k", "seconds"): 0.75,
    ("cdn_macro_1m", "seconds"): 0.75,
    ("constrained_macro_100k", "seconds"): 0.75,
}

#: The micro-benchmark throughput fields ``--check`` gates on.
CHECKED_THROUGHPUTS = (
    ("event_loop_churn", "events_per_second"),
    ("varint_roundtrip", "ops_per_second"),
)

#: Nested metric fields ``--check`` gates as *floors* (current must stay
#: within the tolerance band *below* the reference).  Pool hit rate is
#: deterministic for a seeded run, so any drop here is a real change to the
#: allocation-free fan-out path, not runner jitter.
CHECKED_METRIC_FLOORS = (
    ("cdn_macro_10k", ("metrics", "pool_datagram_hit_rate")),
)

#: Nested metric fields ``--check`` gates as *ceilings* (current must stay
#: within the tolerance band *above* the reference).  Events-per-wave is the
#: scheduler cost of one pushed update's fan-out; growth here means the
#: flat-fan-out property is eroding even if wall-clock hides it.  Macro
#: wall-clock ceilings ride the wide per-benchmark tolerance override above.
CHECKED_METRIC_CEILINGS = (
    ("cdn_macro_10k", ("metrics", "events_per_wave")),
    # The committed reference records zero fallback waves, so the ceiling
    # band multiplies out to zero: any wave that degrades the 10k macro's
    # fan-out to per-datagram transmission fails the smoke gate outright.
    ("cdn_macro_10k", ("metrics", "link_batch_fallback_waves")),
    ("cdn_macro_10k", ("seconds",)),
    ("cdn_macro_100k", ("seconds",)),
    ("cdn_macro_1m", ("seconds",)),
    ("constrained_macro_100k", ("seconds",)),
)

#: Sampling strides for the ``--metrics`` span tracer.  Every object is
#: traced (the experiments push tens, not millions), but only one subscriber
#: in 101 records deliveries so the 10k/100k macros stay allocation-light.
METRICS_SUBSCRIBER_SAMPLE_EVERY = 101

#: Every benchmark key ``--only`` may select (misspellings are rejected so a
#: selection that runs nothing cannot silently exit 0).
BENCHMARK_KEYS = (
    "event_loop_churn",
    "varint_roundtrip",
    "relay_fanout_e11",
    "relay_churn",
    "failure_detection",
    "origin_failover",
    "constrained_tiers_e15",
    "flash_crowd",
    "cdn_macro_10k",
    "cdn_macro_100k",
    "cdn_macro_1m",
    "constrained_macro_100k",
)

#: Varint corpus: RFC 9000 boundary values of every size class plus
#: mid-range representatives.
VARINT_CORPUS = (
    0,
    1,
    37,
    63,
    64,
    15293,
    16383,
    16384,
    494878333,
    (1 << 30) - 1,
    1 << 30,
    151288809941952652,
    MAX_VARINT,
)


def peak_rss_bytes() -> int:
    """Peak resident set size of this process so far, in bytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def run_benchmark_isolated(fn, /, **kwargs) -> dict[str, object]:
    """Run ``fn(**kwargs)`` in a forked child and return its result document.

    ``getrusage`` max-RSS is monotonic over the life of a process, so two
    macros measured back to back in one process contaminate each other: the
    second inherits the first's high-water mark and its RSS gate gates
    nothing.  A forked child starts with a fresh high-water mark (its
    baseline is the shared copy-on-write image at fork time, reported by the
    benchmark as ``rss_baseline_bytes``), so ``peak_rss_bytes`` /
    ``rss_delta_bytes`` describe *this* benchmark's memory.  Falls back to
    an in-process run where ``fork`` is unavailable.
    """
    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX fallback
        return fn(**kwargs)
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # pragma: no cover - child exits before coverage reporting
        status = 1
        try:
            os.close(read_fd)
            result = fn(**kwargs)
            result["rss_isolated"] = True
            with os.fdopen(write_fd, "w") as stream:
                json.dump(result, stream)
            status = 0
        finally:
            os._exit(status)
    os.close(write_fd)
    with os.fdopen(read_fd) as stream:
        payload = stream.read()
    _, exit_status = os.waitpid(pid, 0)
    if exit_status != 0 or not payload:
        raise RuntimeError(
            f"forked benchmark {fn.__name__} failed (wait status {exit_status})"
        )
    return json.loads(payload)


@contextmanager
def quiesced_gc(freeze: bool = False):
    """Generational GC off for the duration of a macro run.

    The macro benchmarks measure the simulation fast path, not the collector;
    with the fan-out path pooled and allocation-free, leaving the cyclic GC
    scanning hundreds of thousands of long-lived simulation objects adds
    multi-second, randomly attributed pauses.  A full collection runs at
    exit, so pauses are paid between benchmarks instead of inside them.

    With ``freeze=True`` everything alive at entry — interpreter, harness and
    the memoised reference sample — is moved to the permanent generation
    first, so neither the exit collection nor any explicit collection inside
    the measured region ever traverses it.  Yields a dict whose ``frozen``
    entry is the permanent-generation object count, surfaced in the
    benchmark ``metrics`` block.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    info = {"frozen": 0}
    if freeze:
        gc.collect()
        gc.freeze()
        info["frozen"] = gc.get_freeze_count()
    try:
        yield info
    finally:
        if freeze:
            gc.unfreeze()
        gc.collect()
        if was_enabled:
            gc.enable()


def repeated(fn, repeat: int, /, **kwargs) -> dict[str, object]:
    """Run a micro-benchmark ``repeat`` times; report min/median seconds.

    The headline ``seconds`` / throughput fields come from the *fastest* run
    (least scheduler interference), so single-sample noise no longer lands in
    the committed reference document.
    """
    runs = [fn(**kwargs) for _ in range(repeat)]
    best = min(runs, key=lambda run: run["seconds"])
    if repeat > 1:
        seconds = [run["seconds"] for run in runs]
        best = dict(best)
        best["repeat"] = repeat
        best["seconds_min"] = round(min(seconds), 6)
        best["seconds_median"] = round(statistics.median(seconds), 6)
        best["seconds_all"] = seconds
    return best


def bench_event_loop_churn(events: int = 200_000) -> dict[str, object]:
    """Scheduler throughput with cancellation churn.

    Half of the scheduled callbacks are cancelled before they run — the
    pattern produced by per-packet retransmission/idle timers — so the
    lazy-deletion skip and the >50%-dead heap compaction are both exercised.
    """
    simulator = Simulator(seed=1)
    executed = [0]

    def tick() -> None:
        executed[0] += 1

    start = time.perf_counter()
    pending = []
    for index in range(events):
        event = simulator.call_later((index % 97) * 1e-4, tick)
        pending.append(event)
        if index % 2 == 0:
            pending[len(pending) // 2].cancel()
    simulator.run_until_idle(max_events=events + 1)
    # Timer restart churn: one timer re-armed many times only fires once.
    timer_fired = [0]
    timer = Timer(simulator, lambda: timer_fired.__setitem__(0, timer_fired[0] + 1))
    for index in range(10_000):
        timer.start(0.5 + index * 1e-5)
    simulator.run_until_idle()
    elapsed = time.perf_counter() - start
    return {
        "scheduled": events + 10_000,
        "executed": executed[0],
        "timer_fired": timer_fired[0],
        "compactions": simulator.compactions,
        "seconds": round(elapsed, 6),
        "events_per_second": round((events + 10_000) / elapsed),
    }


def bench_varint_roundtrip(rounds: int = 40_000) -> dict[str, object]:
    """Encode+decode throughput over the boundary-value corpus."""
    corpus = VARINT_CORPUS
    start = time.perf_counter()
    operations = 0
    for _ in range(rounds):
        for value in corpus:
            encoded = encode_varint(value)
            decoded, _ = decode_varint(encoded)
            if decoded != value:  # pragma: no cover - would be a codec bug
                raise AssertionError(f"round-trip mismatch for {value}")
            operations += 2
    # Reader/writer batch round-trip (the packet/message codec shape).
    writer = VarintWriter()
    for value in corpus:
        writer.write_varint(value)
    blob = writer.getvalue()
    for _ in range(rounds // 10):
        reader = VarintReader(blob)
        for value in corpus:
            if reader.read_varint() != value:  # pragma: no cover
                raise AssertionError("reader mismatch")
        operations += len(corpus)
    elapsed = time.perf_counter() - start
    return {
        "operations": operations,
        "seconds": round(elapsed, 6),
        "ops_per_second": round(operations / elapsed),
    }


def _sample_metrics_block(sample, updates: int) -> dict[str, object]:
    """The ``metrics`` sub-document of a fan-out benchmark entry.

    Always present (the counters are free — they are scraped, not computed),
    so pool hit rate, heap compactions and events-per-wave are visible in
    the committed BENCH json and gateable by ``--check``.
    """
    pool = sample.pool_counters or {}
    datagram_total = pool.get("datagrams_allocated", 0) + pool.get("datagrams_reused", 0)
    buffer_total = pool.get("buffers_allocated", 0) + pool.get("buffers_reused", 0)
    return {
        "pool": dict(pool),
        "pool_datagram_hit_rate": (
            round(pool.get("datagrams_reused", 0) / datagram_total, 6)
            if datagram_total
            else 0.0
        ),
        "pool_buffer_hit_rate": (
            round(pool.get("buffers_reused", 0) / buffer_total, 6) if buffer_total else 0.0
        ),
        "compactions": sample.compactions,
        # Scheduler cost of one pushed update's fan-out, with the (fixed-size)
        # setup cost amortised across the waves of this run.
        "events_per_wave": round(sample.events_scheduled / updates, 1),
        # Fan-out waves that degraded to per-datagram transmission.  Zero on
        # every link the harness builds (batching is bandwidth- and
        # loss-aware); gated to stay zero by ``--check``.
        "link_batch_fallback_waves": sample.link_batch_fallback_waves,
    }


def bench_relay_fanout_e11(
    subscribers: int = 1000, updates: int = 5, telemetry: Telemetry | None = None
) -> dict[str, object]:
    """Wall-clock of the E11 fan-out experiment at the benchmark scale."""
    with quiesced_gc():
        start = time.perf_counter()
        result = run_relay_fanout(
            subscriber_counts=(subscribers,), updates=updates, telemetry=telemetry
        )
        elapsed = time.perf_counter() - start
    sample = result.samples[0]
    row = sample.as_row()
    entry = {
        "subscribers": subscribers,
        "updates": updates,
        "seconds": round(elapsed, 6),
        "delivered_objects": row["delivered"],
        "expected_objects": row["expected"],
        "origin_objects": row["origin_objects"],
        "origin_egress_bytes": row["origin_bytes"],
        "max_tier_byte_deviation": row["max_tier_dev"],
        "tier_bytes": list(sample.measured_tier_bytes),
        "events_scheduled": sample.events_scheduled,
        "metrics": _sample_metrics_block(sample, updates),
    }
    if sample.latency is not None:
        entry["latency"] = sample.latency
    return entry


#: Memo of the 1,000-subscriber reference sample per update count, so a full
#: harness run (10k and 100k macros) measures the reference fan-out once.
_MACRO_REFERENCE_CACHE: dict[int, object] = {}


def _macro_reference_sample(updates: int):
    sample = _MACRO_REFERENCE_CACHE.get(updates)
    if sample is None:
        sample = run_relay_fanout(subscriber_counts=(1000,), updates=updates).samples[0]
        _MACRO_REFERENCE_CACHE[updates] = sample
    return sample


def bench_cdn_macro(
    subscribers: int,
    updates: int = 5,
    telemetry: Telemetry | None = None,
    aggregate_leaves: bool = False,
) -> dict[str, object]:
    """CDN-tree macro-benchmark at ``subscribers`` with the egress invariant.

    Origin egress must be O(branching factor): identical to the
    1,000-subscriber run (same tree, same updates) despite the larger
    subscriber population.  Reports ``events_scheduled`` (flat fan-out means
    events grow with deliveries, not with per-datagram scheduling overhead),
    RSS (absolute peak, pre-run baseline and their delta — the delta is what
    the memory gates compare, so one macro's high-water mark cannot vouch
    for another's) and a ``metrics`` block (pool hit rates, heap
    compactions, events-per-wave, frozen-object count) so memory, allocation
    and scheduler regressions are all visible in the JSON.

    ``aggregate_leaves`` runs the tree in exact counted mode (one live
    connection per homogeneous leaf population) — the representation behind
    the 1M-subscriber macro.  Every reported statistic is multiplied out at
    collection time and is bit-identical to the dense run's.
    """
    reference_sample = _macro_reference_sample(updates)
    rss_baseline = peak_rss_bytes()
    with quiesced_gc(freeze=True) as gc_info:
        start = time.perf_counter()
        result = run_relay_fanout(
            subscriber_counts=(subscribers,),
            updates=updates,
            telemetry=telemetry,
            aggregate_leaves=aggregate_leaves,
        )
        elapsed = time.perf_counter() - start
    peak_rss = peak_rss_bytes()
    sample = result.samples[0]
    invariant_ok = (
        sample.measured_origin_objects == reference_sample.measured_origin_objects
        and sample.origin_egress_bytes == reference_sample.origin_egress_bytes
        and sample.delivered_objects == subscribers * updates
    )
    entry = {
        "subscribers": subscribers,
        "updates": updates,
        "aggregate_leaves": aggregate_leaves,
        "seconds": round(elapsed, 6),
        "delivered_objects": sample.delivered_objects,
        "origin_objects": sample.measured_origin_objects,
        "origin_egress_bytes": sample.origin_egress_bytes,
        "reference_origin_egress_bytes": reference_sample.origin_egress_bytes,
        "origin_egress_invariant_ok": invariant_ok,
        "max_tier_byte_deviation": sample.max_tier_byte_deviation,
        "events_scheduled": sample.events_scheduled,
        "peak_rss_bytes": peak_rss,
        "rss_baseline_bytes": rss_baseline,
        "rss_delta_bytes": max(0, peak_rss - rss_baseline),
        "rss_isolated": False,
        "metrics": {
            **_sample_metrics_block(sample, updates),
            "gc_frozen_objects": gc_info["frozen"],
        },
    }
    if sample.latency is not None:
        entry["latency"] = sample.latency
    return entry


def bench_cdn_macro_10k(
    subscribers: int = 10_000, updates: int = 5, telemetry: Telemetry | None = None
) -> dict[str, object]:
    """10,000-subscriber CDN-tree macro-benchmark (see :func:`bench_cdn_macro`)."""
    return bench_cdn_macro(subscribers, updates, telemetry)


def bench_cdn_macro_100k(
    subscribers: int = 100_000, updates: int = 5, telemetry: Telemetry | None = None
) -> dict[str, object]:
    """100,000-subscriber CDN-tree macro-benchmark (see :func:`bench_cdn_macro`)."""
    return bench_cdn_macro(subscribers, updates, telemetry)


def bench_cdn_macro_1m(
    subscribers: int = 1_000_000, updates: int = 5, telemetry: Telemetry | None = None
) -> dict[str, object]:
    """1,000,000-subscriber macro-benchmark in exact aggregate-leaf mode.

    The only macro that runs counted: a million dense subscriber sessions
    would spend the whole budget on identical replicated traffic.  The
    aggregate representation keeps one live connection per leaf population
    (plus dense materialisation for span-sampled members under
    ``--metrics``), and the reported statistics — origin egress above all —
    are exactly what the dense run would have measured.  Gated in
    :func:`main` on subscribers delivered, wall-clock and RSS delta.
    """
    return bench_cdn_macro(subscribers, updates, telemetry, aggregate_leaves=True)


def bench_relay_churn(
    subscribers: int = 1000, telemetry: Telemetry | None = None
) -> dict[str, object]:
    """E12 churn macro-benchmark: relay kills under a live CDN run.

    Wall-clock covers the whole experiment (build, subscribe, twelve pushed
    updates, a mid-tier kill and an edge kill, recovery, drain).  The
    correctness fields are machine-independent: delivery must stay gapless
    and duplicate-free for every subscriber, and the per-tier re-attach
    latencies must match the closed-form recovery model.
    """
    with quiesced_gc():
        start = time.perf_counter()
        result = run_relay_churn(subscribers=subscribers, telemetry=telemetry)
        elapsed = time.perf_counter() - start
    reattach: dict[str, dict[str, float]] = {}
    model_ok = True
    failover_complete = all(kill.complete for kill in result.kills)
    for kill in result.kills:
        for row in kill.rows():
            # One entry per (killed relay, orphan tier): two kills orphaning
            # the same tier must not overwrite each other's measurements.
            reattach[f"{kill.killed}:{row['orphan_tier']}"] = {
                "orphans": row["orphans"],
                "mean_ms": row["reattach_ms_mean"],
                "max_ms": row["reattach_ms_max"],
                "model_ms": row["model_ms"],
            }
            if (
                row["reattach_ms_max"] != row["model_ms"]
                or row["reattach_ms_mean"] != row["model_ms"]
            ):
                model_ok = False
    return {
        "subscribers": subscribers,
        "updates": result.updates,
        "kills": len(result.kills),
        "seconds": round(elapsed, 6),
        "delivered_objects": result.delivered_objects,
        "expected_objects": result.expected_objects,
        "gapless_subscribers": result.gapless_subscribers,
        "gapless_ok": result.gapless,
        "duplicates_dropped": (
            result.relay_duplicates_dropped + result.subscriber_duplicates_dropped
        ),
        "recovery_fetches": result.recovery_fetches + result.subscriber_gap_fetches,
        "recovered_objects": result.recovered_objects,
        "reattach_latency": reattach,
        "reattach_model_ok": model_ok,
        "failover_complete_ok": failover_complete,
    }


def bench_failure_detection(
    subscribers: int = 1000, telemetry: Telemetry | None = None
) -> dict[str, object]:
    """E13 macro-benchmark: silent crashes, failover purely in-band.

    No control-plane kill signal is issued; a mid-tier relay crash must be
    detected through keepalive probe timeouts (PTO-suspect path) and an
    edge crash through the subscribers' idle timers (idle-timeout path).
    The correctness fields are machine-independent: delivery must stay
    gapless end to end, both measured detection latencies must match the
    closed-form model in ``repro.analysis.detection``, and every orphan
    must re-attach on the 3-RTT floor after detection.
    """
    with quiesced_gc():
        start = time.perf_counter()
        result = run_failure_detection(subscribers=subscribers, telemetry=telemetry)
        elapsed = time.perf_counter() - start
    detection: dict[str, dict[str, object]] = {}
    for sample in result.samples:
        detection[sample.killed] = {
            "path": sample.detected_via,
            "model_path": sample.model_path,
            "detect_ms": round(sample.detection_latency * 1000, 3),
            "model_ms": round(sample.model_detection_latency * 1000, 3),
            "orphans": sample.orphan_relays + sample.orphan_subscribers,
            "complete": sample.complete,
        }
    return {
        "subscribers": subscribers,
        "updates": result.updates,
        "crashes": len(result.samples),
        "control_plane_kills": result.control_plane_kills,
        "seconds": round(elapsed, 6),
        "delivered_objects": result.delivered_objects,
        "expected_objects": result.expected_objects,
        "gapless_subscribers": result.gapless_subscribers,
        "gapless_ok": result.gapless,
        "duplicates_dropped": (
            result.relay_duplicates_dropped + result.subscriber_duplicates_dropped
        ),
        "recovery_fetches": result.recovery_fetches + result.subscriber_gap_fetches,
        "false_positive_events": result.false_positive_events,
        "detection_latency": detection,
        "detection_model_ok": result.detection_model_ok,
        "reattach_model_ok": result.reattach_model_ok,
        "failover_complete_ok": all(sample.complete for sample in result.samples)
        and len(result.samples) == 2,
    }


def bench_origin_failover(
    subscribers: int = 1000, telemetry: Telemetry | None = None
) -> dict[str, object]:
    """E14 macro-benchmark: silent active-origin crash, in-band promotion.

    The origin is replicated (one active + one warm standby); the active is
    crashed silently mid-stream.  The tier-0 relays' keepalive'd uplinks
    must detect the death, elect the standby (epoch-numbered, first
    detector wins) and transplant every tier-0 subscription with a gap
    FETCH against the standby's warm cache.  The correctness fields are
    machine-independent: delivery must stay gapless for every subscriber,
    the measured detection *and* end-to-end promotion latencies must match
    the closed-form model in ``repro.analysis.promotion``, and no
    control-plane signal or false-positive failover may occur.
    """
    with quiesced_gc():
        start = time.perf_counter()
        result = run_origin_failover(subscribers=subscribers, telemetry=telemetry)
        elapsed = time.perf_counter() - start
    return {
        "subscribers": subscribers,
        "updates": result.updates,
        "origins": result.origins,
        "epoch": result.epoch,
        "control_plane_kills": result.control_plane_kills,
        "seconds": round(elapsed, 6),
        "delivered_objects": result.delivered_objects,
        "expected_objects": result.expected_objects,
        "gapless_subscribers": result.gapless_subscribers,
        "gapless_ok": result.gapless,
        "duplicates_dropped": result.duplicates_dropped,
        "recovery_fetches": result.recovery_fetches,
        "replayed_objects": result.replayed_objects,
        "reattached_relays": result.reattached_relays,
        "false_positive_events": result.false_positive_events,
        "promotion_latency": {
            "path": result.detected_via,
            "detect_ms": round((result.detection_latency or -1.0) * 1000, 3),
            "model_detect_ms": round(result.model.detection_latency * 1000, 3),
            "promotion_ms": round((result.promotion_latency or -1.0) * 1000, 3),
            "model_promotion_ms": round(result.model.promotion_latency * 1000, 3),
        },
        "detection_model_ok": result.detection_model_ok,
        "promotion_model_ok": result.promotion_model_ok,
        "failover_complete_ok": result.event is not None
        and result.event.complete
        and result.epoch == 1,
    }


def bench_constrained_tiers_e15(
    subscribers: int = 100, updates: int = 5, telemetry: Telemetry | None = None
) -> dict[str, object]:
    """E15 macro-benchmark: the serialisation-vs-propagation knee.

    Wall-clock covers the whole sweep (eight bandwidth points plus the
    lossy-edge sample).  Every correctness field is machine-independent —
    bit-exact closed-form agreement, knee position, loss repair and the
    fallback-wave counter — so the gates in :func:`main` hold on any
    runner class.  ``telemetry`` is accepted for signature uniformity; the
    constrained experiment does not thread a telemetry object.
    """
    del telemetry  # not threaded through the constrained experiment
    with quiesced_gc():
        start = time.perf_counter()
        result = run_constrained_tiers(subscribers=subscribers, updates=updates)
        elapsed = time.perf_counter() - start
    return {
        "subscribers": subscribers,
        "updates": updates,
        "sweep_points": len(result.samples),
        "seconds": round(elapsed, 6),
        "wire_bytes": result.wire_bytes,
        "model_knee_index": result.model_knee_index,
        "measured_knee_index": result.measured_knee_index,
        "knee_matches_model": result.knee_matches_model,
        "all_model_exact": result.all_model_exact,
        "link_batch_fallback_waves": result.total_fallback_waves,
        "sweep": result.rows(),
        "loss_sample": result.loss_sample.as_row(),
        "loss_repaired": result.loss_sample.repaired,
        "loss_congestion_events": result.loss_sample.congestion_events,
    }


def bench_flash_crowd(
    stormers: int = 100, telemetry: Telemetry | None = None
) -> dict[str, object]:
    """E16 macro-benchmark: subscribe storms under admission control.

    Wall-clock covers all three regimes (unbounded baseline storms, the
    token-bucket-throttled storm, the pinned hotspot storm with
    spillover).  Every correctness field is machine-independent and gated
    in :func:`main`: the baseline's pending-subscribe high-water mark must
    grow with storm size, the throttled storm must admit every stormer
    with rejections actually observed and its completion time and
    join-latency distribution matching ``repro.analysis.admission``
    bit-exactly, and the hotspot storm must admit everyone while moving
    some stormers to sibling leaves.
    """
    with quiesced_gc():
        start = time.perf_counter()
        result = run_flash_crowd(
            stormers=stormers,
            baseline_stormers=(stormers // 2, stormers * 2),
            telemetry=telemetry,
        )
        elapsed = time.perf_counter() - start
    summary = result.summary_row()
    return {
        "stormers": stormers,
        "seconds": round(elapsed, 6),
        "baseline_high_water": [
            sample.pending_high_water for sample in result.baselines
        ],
        "baseline_pathology_ok": summary["baseline_high_water_grows"],
        "throttled_admitted": result.throttled.admitted,
        "throttled_rejections": result.throttled.rejections,
        "throttled_all_admitted_ok": summary["throttled_all_admitted"],
        "throttled_completion_s": result.throttled.measured_completion,
        "throttled_model_completion_s": result.throttled.model_completion,
        "throttled_p99_join_s": result.throttled.measured_p99_join,
        "admission_model_exact_ok": summary["model_exact"],
        "bounded_high_water": result.throttled.pending_high_water,
        "spillover_admitted": result.spillover.admitted,
        "spillovers": result.spillover.spillovers,
        "spillover_per_leaf": list(result.spillover.per_leaf),
        "spillover_all_admitted_ok": summary["spillover_all_admitted"],
    }


def bench_constrained_macro_100k(
    subscribers: int = 100_000, updates: int = 5, telemetry: Telemetry | None = None
) -> dict[str, object]:
    """100,000-subscriber macro on constrained, lossy tiers (always dense).

    2 Mbit/s on every tier, 0.5 % independent loss on the access links and
    NewReno on every relay's downstream connection.  Gated in :func:`main`
    on full loss repair (every update reaches every subscriber), observable
    congestion-controller activity and zero fallback waves; wall-clock rides
    the wide macro ``--check`` ceiling.  RSS is reported the same way as the
    ideal-link macros (forked isolation in :func:`run`).
    """
    del telemetry  # not threaded through the constrained experiment
    rss_baseline = peak_rss_bytes()
    with quiesced_gc(freeze=True) as gc_info:
        start = time.perf_counter()
        result = run_constrained_macro(subscribers=subscribers, updates=updates)
        elapsed = time.perf_counter() - start
    peak_rss = peak_rss_bytes()
    return {
        "subscribers": subscribers,
        "updates": updates,
        "bandwidth_bps": 2_000_000.0,
        "access_loss": 0.005,
        "seconds": round(elapsed, 6),
        "delivered_objects": result.delivered,
        "expected_objects": result.expected,
        "repaired_ok": result.repaired,
        "retransmissions": result.retransmissions,
        "congestion_events": result.congestion_events,
        "link_batch_fallback_waves": result.link_batch_fallback_waves,
        "events_scheduled": result.events_scheduled,
        "peak_rss_bytes": peak_rss,
        "rss_baseline_bytes": rss_baseline,
        "rss_delta_bytes": max(0, peak_rss - rss_baseline),
        "rss_isolated": False,
        "metrics": {"gc_frozen_objects": gc_info["frozen"]},
    }


def run(
    smoke: bool = False,
    skip_macro: bool = False,
    repeat: int = 1,
    only: set[str] | None = None,
    telemetry: Telemetry | None = None,
) -> tuple[dict[str, object], list[dict[str, object]]]:
    """Run the harness; return the result document and harvested spans.

    ``only`` restricts the run to the named benchmark keys (for profiling a
    single benchmark); correctness gating in :func:`main` only applies to
    benchmarks that actually ran.  With ``telemetry`` set (``--metrics``),
    the experiment benchmarks record metrics and spans; each benchmark's
    final span set is harvested (tagged with the benchmark name) before the
    next benchmark clears the tracer.
    """

    def selected(name: str) -> bool:
        return only is None or name in only

    trace_records: list[dict[str, object]] = []

    def harvest(name: str) -> None:
        if telemetry is not None and telemetry.spans is not None:
            trace_records.extend(
                {"benchmark": name, **record}
                for record in spans_to_records(telemetry.spans)
            )

    benchmarks: dict[str, object] = {}
    if selected("event_loop_churn"):
        benchmarks["event_loop_churn"] = repeated(
            bench_event_loop_churn, repeat, events=50_000 if smoke else 200_000
        )
    if selected("varint_roundtrip"):
        benchmarks["varint_roundtrip"] = repeated(
            bench_varint_roundtrip, repeat, rounds=8_000 if smoke else 40_000
        )
    if selected("relay_fanout_e11"):
        benchmarks["relay_fanout_e11"] = bench_relay_fanout_e11(
            subscribers=200 if smoke else 1000, telemetry=telemetry
        )
        harvest("relay_fanout_e11")
    if selected("relay_churn"):
        benchmarks["relay_churn"] = bench_relay_churn(
            subscribers=200 if smoke else 1000, telemetry=telemetry
        )
        harvest("relay_churn")
    if selected("failure_detection"):
        benchmarks["failure_detection"] = bench_failure_detection(
            subscribers=200 if smoke else 1000, telemetry=telemetry
        )
        harvest("failure_detection")
    if selected("origin_failover"):
        benchmarks["origin_failover"] = bench_origin_failover(
            subscribers=200 if smoke else 1000, telemetry=telemetry
        )
        harvest("origin_failover")
    if selected("constrained_tiers_e15"):
        benchmarks["constrained_tiers_e15"] = bench_constrained_tiers_e15(
            telemetry=telemetry
        )
    if selected("flash_crowd"):
        benchmarks["flash_crowd"] = bench_flash_crowd(
            stormers=40 if smoke else 100, telemetry=telemetry
        )
    macro_plan = [("cdn_macro_10k", bench_cdn_macro_10k)]
    if not smoke:
        macro_plan.append(("cdn_macro_100k", bench_cdn_macro_100k))
        macro_plan.append(("cdn_macro_1m", bench_cdn_macro_1m))
    # The constrained macro runs in --smoke too: the acceptance criterion is
    # precisely that the lossy constrained regime at 100k completes inside
    # the CI smoke budget now that batching is bandwidth- and loss-aware.
    macro_plan.append(("constrained_macro_100k", bench_constrained_macro_100k))
    macro_plan = [
        (name, fn) for name, fn in macro_plan if not skip_macro and selected(name)
    ]
    if any(name.startswith("cdn_macro") for name, _ in macro_plan):
        # Warm the dense 1k reference memo in *this* process before any
        # macro forks: the children inherit it copy-on-write, so the
        # reference fan-out is measured exactly once per harness run.
        _macro_reference_sample(5)
    for name, fn in macro_plan:
        if telemetry is None:
            # Forked so each macro's RSS high-water mark is its own
            # (getrusage max-RSS is process-lifetime-monotonic).
            benchmarks[name] = run_benchmark_isolated(fn)
        else:
            # Telemetry accumulates in-process registries/spans, which a
            # child cannot hand back — run inline; rss_delta_bytes still
            # isolates this macro's growth from earlier high-water marks
            # as long as it is the largest macro so far.
            benchmarks[name] = fn(telemetry=telemetry)
            harvest(name)
    document = {
        "schema": SCHEMA,
        "generated_unix": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "smoke": smoke,
        "metrics_enabled": telemetry is not None,
        "benchmarks": benchmarks,
    }
    return document, trace_records


def check_against_reference(
    document: dict[str, object], reference_path: Path, tolerance: float = CHECK_TOLERANCE
) -> list[str]:
    """Compare micro-benchmark throughputs against a reference document.

    Returns a list of failure messages (empty when every gated throughput is
    within ``tolerance`` of the reference).  Only throughputs present in both
    documents are compared, so a reference generated before a benchmark
    existed does not fail the gate.
    """
    reference = json.loads(reference_path.read_text())
    failures: list[str] = []

    def lookup(doc: dict[str, object], bench: str, path: tuple[str, ...]):
        node = doc.get("benchmarks", {}).get(bench)
        for key in path:
            if not isinstance(node, dict):
                return None
            node = node.get(key)
        return node

    def gate(bench: str, path: tuple[str, ...], direction: str) -> None:
        field = ".".join(path)
        current = lookup(document, bench, path)
        baseline = lookup(reference, bench, path)
        if current is None or baseline is None:
            return
        band = CHECK_TOLERANCE_OVERRIDES.get((bench, field), tolerance)
        if direction == "floor":
            bound = baseline * (1.0 - band)
            ok = current >= bound
            comparison = f"{current} < {bound:.6g}"
        else:
            bound = baseline * (1.0 + band)
            ok = current <= bound
            comparison = f"{current} > {bound:.6g}"
        status = "ok" if ok else "REGRESSION"
        print(
            f"check {bench}.{field}: {current} vs reference {baseline} "
            f"({direction} {bound:.6g}) {status}"
        )
        if not ok:
            failures.append(
                f"{bench}.{field} regressed more than {band:.0%}: "
                f"{comparison} (reference {baseline})"
            )

    for bench, field in CHECKED_THROUGHPUTS:
        gate(bench, (field,), "floor")
    for bench, path in CHECKED_METRIC_FLOORS:
        gate(bench, path, "floor")
    for bench, path in CHECKED_METRIC_CEILINGS:
        gate(bench, path, "ceiling")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="BENCH_fastpath.json",
        help="path of the JSON result document (default: ./BENCH_fastpath.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced iteration counts; the largest macro run stays at 10k "
        "subscribers (CI smoke budget)",
    )
    parser.add_argument(
        "--skip-macro",
        action="store_true",
        help="skip the 10k/100k/1M-subscriber and constrained macro-benchmarks",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="run each micro-benchmark N times and report min/median "
        "(headline numbers come from the fastest run)",
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="KEYS",
        help="comma-separated benchmark keys to run (e.g. cdn_macro_10k); "
        "correctness gating applies only to benchmarks that ran",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="wrap the selected benchmarks in cProfile and write the profile "
        "to a text file artifact (combine with --only to profile one benchmark)",
    )
    parser.add_argument(
        "--profile-output",
        default=None,
        metavar="PATH",
        help="where --profile writes its report "
        "(default: <output stem>_profile.txt next to --output)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="enable the telemetry layer for the experiment benchmarks: "
        "metrics registry + sampled span tracing.  Writes three artifacts "
        "next to --output: <stem>_metrics.json (registry + span summary), "
        "<stem>_metrics.prom (Prometheus text exposition) and "
        "<stem>_trace.jsonl (one traced object span per line)",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="REFERENCE",
        help="compare micro-benchmark throughputs against a reference "
        f"BENCH_fastpath.json; exit non-zero on a >{CHECK_TOLERANCE:.0%} "
        "regression",
    )
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")
    only = None
    if args.only:
        only = {key.strip() for key in args.only.split(",") if key.strip()}
        unknown = only - set(BENCHMARK_KEYS)
        if unknown:
            parser.error(
                f"--only: unknown benchmark keys {sorted(unknown)}; "
                f"valid keys: {', '.join(BENCHMARK_KEYS)}"
            )
        excluded = []
        macro_keys = (
            "cdn_macro_10k",
            "cdn_macro_100k",
            "cdn_macro_1m",
            "constrained_macro_100k",
        )
        if args.skip_macro:
            excluded += [key for key in macro_keys if key in only]
        elif args.smoke:
            excluded += [key for key in ("cdn_macro_100k", "cdn_macro_1m") if key in only]
        for key in excluded:
            print(
                f"warning: --only selected {key} but the current mode "
                "(--smoke/--skip-macro) excludes it; it will not run",
                file=sys.stderr,
            )
    output = Path(args.output)
    telemetry = None
    if args.metrics:
        telemetry = Telemetry(
            metrics=MetricsRegistry(),
            spans=SpanTracer(
                subscriber_sample_every=METRICS_SUBSCRIBER_SAMPLE_EVERY
            ),
        )
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        document, trace_records = run(
            smoke=args.smoke,
            skip_macro=args.skip_macro,
            repeat=args.repeat,
            only=only,
            telemetry=telemetry,
        )
        profiler.disable()
        profile_path = Path(
            args.profile_output
            if args.profile_output
            else output.with_name(f"{output.stem}_profile.txt")
        )
        with profile_path.open("w") as stream:
            stats = pstats.Stats(profiler, stream=stream).sort_stats("cumulative")
            stream.write("-- cProfile: top 50 by cumulative time --\n")
            stats.print_stats(50)
        print(f"wrote profile to {profile_path}", file=sys.stderr)
    else:
        document, trace_records = run(
            smoke=args.smoke,
            skip_macro=args.skip_macro,
            repeat=args.repeat,
            only=only,
            telemetry=telemetry,
        )
    output.write_text(json.dumps(document, indent=2) + "\n")
    if telemetry is not None:
        snapshot_path = output.with_name(f"{output.stem}_metrics.json")
        write_metrics_snapshot(telemetry.metrics, snapshot_path, spans=telemetry.spans)
        prometheus_path = output.with_name(f"{output.stem}_metrics.prom")
        write_prometheus(telemetry.metrics, prometheus_path)
        trace_path = output.with_name(f"{output.stem}_trace.jsonl")
        with trace_path.open("w") as stream:
            for record in trace_records:
                stream.write(json.dumps(record, separators=(",", ":")))
                stream.write("\n")
        print(
            f"wrote telemetry artifacts: {snapshot_path}, {prometheus_path}, "
            f"{trace_path} ({len(trace_records)} spans)",
            file=sys.stderr,
        )
    json.dump(document["benchmarks"], sys.stdout, indent=2)
    print()
    benchmarks = document["benchmarks"]
    for macro_key in ("cdn_macro_10k", "cdn_macro_100k", "cdn_macro_1m"):
        macro = benchmarks.get(macro_key)
        if macro is not None and not macro["origin_egress_invariant_ok"]:
            print(f"FAIL: {macro_key}: origin egress grew with subscriber count", file=sys.stderr)
            return 1
    macro_1m = benchmarks.get("cdn_macro_1m")
    if macro_1m is not None:
        if macro_1m["subscribers"] != 1_000_000 or macro_1m["delivered_objects"] != (
            macro_1m["subscribers"] * macro_1m["updates"]
        ):
            print("FAIL: cdn_macro_1m did not deliver to 1,000,000 subscribers", file=sys.stderr)
            return 1
        if macro_1m["seconds"] >= 300.0:
            print(
                f"FAIL: cdn_macro_1m wall-clock {macro_1m['seconds']:.1f}s "
                "breached the 300 s budget",
                file=sys.stderr,
            )
            return 1
        if macro_1m["rss_delta_bytes"] >= 8 * 1024**3:
            print(
                f"FAIL: cdn_macro_1m RSS delta {macro_1m['rss_delta_bytes']} "
                "breached the 8 GiB budget",
                file=sys.stderr,
            )
            return 1
    churn = benchmarks.get("relay_churn")
    if churn is not None:
        if not churn["gapless_ok"]:
            print("FAIL: relay churn broke gapless delivery", file=sys.stderr)
            return 1
        if not churn["failover_complete_ok"]:
            print("FAIL: relay churn left orphans unattached", file=sys.stderr)
            return 1
    detection = benchmarks.get("failure_detection")
    if detection is not None:
        if not detection["gapless_ok"]:
            print("FAIL: in-band failure detection broke gapless delivery", file=sys.stderr)
            return 1
        if not detection["failover_complete_ok"]:
            print("FAIL: in-band detection left orphans unattached", file=sys.stderr)
            return 1
        if not (detection["detection_model_ok"] and detection["reattach_model_ok"]):
            print("FAIL: detection latency diverged from the closed-form model", file=sys.stderr)
            return 1
        if detection["control_plane_kills"] or detection["false_positive_events"]:
            print("FAIL: in-band run used control-plane signals or false positives", file=sys.stderr)
            return 1
    failover = benchmarks.get("origin_failover")
    if failover is not None:
        if not failover["gapless_ok"]:
            print("FAIL: origin failover broke gapless delivery", file=sys.stderr)
            return 1
        if not failover["failover_complete_ok"]:
            print("FAIL: origin promotion left tier-0 relays unattached", file=sys.stderr)
            return 1
        if not (failover["detection_model_ok"] and failover["promotion_model_ok"]):
            print("FAIL: promotion latency diverged from the closed-form model", file=sys.stderr)
            return 1
        if failover["control_plane_kills"] or failover["false_positive_events"]:
            print("FAIL: origin failover used control-plane signals or false positives", file=sys.stderr)
            return 1
    constrained = benchmarks.get("constrained_tiers_e15")
    if constrained is not None:
        if not constrained["all_model_exact"]:
            print(
                "FAIL: constrained_tiers_e15: a delivery time diverged from "
                "the closed-form serialisation model",
                file=sys.stderr,
            )
            return 1
        if not constrained["knee_matches_model"]:
            print(
                "FAIL: constrained_tiers_e15: measured knee "
                f"{constrained['measured_knee_index']} != modelled knee "
                f"{constrained['model_knee_index']}",
                file=sys.stderr,
            )
            return 1
        if constrained["link_batch_fallback_waves"]:
            print(
                "FAIL: constrained_tiers_e15: constrained links fell back to "
                "per-datagram transmission",
                file=sys.stderr,
            )
            return 1
        if not constrained["loss_repaired"] or constrained["loss_congestion_events"] <= 0:
            print(
                "FAIL: constrained_tiers_e15: lossy-edge sample did not repair "
                "with observable congestion control",
                file=sys.stderr,
            )
            return 1
    crowd = benchmarks.get("flash_crowd")
    if crowd is not None:
        if not crowd["baseline_pathology_ok"]:
            print(
                "FAIL: flash_crowd: unlimited baseline high-water mark did not "
                "grow with storm size (the pathology admission control caps)",
                file=sys.stderr,
            )
            return 1
        if not crowd["throttled_all_admitted_ok"] or not crowd["spillover_all_admitted_ok"]:
            print("FAIL: flash_crowd: a stormer was never admitted", file=sys.stderr)
            return 1
        if crowd["throttled_rejections"] <= 0:
            print(
                "FAIL: flash_crowd: the constrained policy rejected nothing "
                "(the storm never exercised admission control)",
                file=sys.stderr,
            )
            return 1
        if not crowd["admission_model_exact_ok"]:
            print(
                "FAIL: flash_crowd: measured admission schedule diverged from "
                "the closed-form token-bucket model",
                file=sys.stderr,
            )
            return 1
        if crowd["spillovers"] <= 0:
            print(
                "FAIL: flash_crowd: the pinned hotspot storm never spilled to "
                "a sibling leaf",
                file=sys.stderr,
            )
            return 1
    constrained_macro = benchmarks.get("constrained_macro_100k")
    if constrained_macro is not None:
        if not constrained_macro["repaired_ok"]:
            print(
                "FAIL: constrained_macro_100k: "
                f"{constrained_macro['delivered_objects']} of "
                f"{constrained_macro['expected_objects']} objects delivered",
                file=sys.stderr,
            )
            return 1
        if constrained_macro["link_batch_fallback_waves"]:
            print(
                "FAIL: constrained_macro_100k: constrained links fell back to "
                "per-datagram transmission",
                file=sys.stderr,
            )
            return 1
        if (
            constrained_macro["retransmissions"] <= 0
            or constrained_macro["congestion_events"] <= 0
        ):
            print(
                "FAIL: constrained_macro_100k: loss repair left no "
                "retransmission/congestion-controller trace",
                file=sys.stderr,
            )
            return 1
    if args.check:
        failures = check_against_reference(document, Path(args.check))
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
