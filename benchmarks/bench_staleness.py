"""E5 / §5 — update timeliness: pushed updates vs TTL-bounded polling."""

from __future__ import annotations

from conftest import attach

from repro.experiments.report import format_table
from repro.experiments.staleness import run_staleness


def test_update_timeliness(benchmark):
    """Time for a resolver to hold the latest record version after a change."""
    result = benchmark.pedantic(
        lambda: run_staleness(ttls=[10, 60, 300], change_offsets=[0.25, 0.75]),
        rounds=1,
        iterations=1,
    )
    table = format_table(result.rows())
    attach(
        benchmark,
        staleness_table=table,
        model_pubsub_s=result.model_pubsub,
        model_polling=result.model_expected_polling,
    )
    print("\n§5 — update timeliness (staleness after a record change)\n" + table)
    for sample in result.samples:
        # Pub/sub delivers within propagation delay; polling waits out the TTL.
        assert sample.pubsub_staleness < 0.1
        assert sample.polling_staleness > sample.pubsub_staleness
    # The benefit grows with the TTL ("depending on the actual TTL", §5).
    assert result.mean_improvement(300) > result.mean_improvement(10)
