"""E3 / Fig. 2 — the recursive DNS-over-MoQT lookup sequence."""

from __future__ import annotations

from conftest import attach

from repro.experiments.fig2_sequence import run_fig2
from repro.experiments.report import format_table


def test_fig2_lookup_sequence(benchmark):
    """Regenerate the Fig. 2 sequence: subscribe+fetch per level, then a push."""
    result = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    table = format_table(result.rows())
    attach(
        benchmark,
        sequence=table,
        lookup_latency_s=result.lookup_latency,
        push_latency_s=result.push_latency,
        upstream_operations=result.upstream_subscribe_fetch_operations,
    )
    print("\nFig. 2 — recursive DNS-over-MoQT lookup sequence\n" + table)
    assert result.upstream_subscribe_fetch_operations == 3
    assert result.answer_addresses == ["192.0.2.10"]
    assert result.push_latency is not None and result.push_latency < 0.1
