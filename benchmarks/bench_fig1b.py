"""E2 / Fig. 1b — A-record change counts over 300 TTL-spaced observations."""

from __future__ import annotations

from conftest import attach

from repro.experiments.fig1b import run_fig1b
from repro.experiments.report import format_table


def test_fig1b_change_rates(benchmark):
    """Regenerate Fig. 1b: change-count percentiles per TTL cluster."""
    result = benchmark.pedantic(
        lambda: run_fig1b(population=4_000, observations=300, max_domains_per_ttl=200),
        rounds=1,
        iterations=1,
    )
    table = format_table(result.rows())
    attach(
        benchmark,
        change_rate_table=table,
        low_ttl_p90_min=result.low_ttl_p90_minimum(),
        high_ttl_p90_max=result.high_ttl_p90_maximum(),
    )
    print("\nFig. 1b — change counts per TTL over 300 observations\n" + table)
    # Paper: >= 71 changes at p90 for TTLs <= 300 s; 0 changes at p90 for >= 600 s.
    assert result.low_ttl_p90_minimum() >= 71
    assert result.high_ttl_p90_maximum() == 0
