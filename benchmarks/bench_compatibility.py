"""E10 / §4.5 — incremental deployment: fallback to traditional DNS."""

from __future__ import annotations

from conftest import attach

from repro.experiments.compatibility import run_compatibility
from repro.experiments.report import format_table


def test_compatibility_fallback(benchmark):
    """Happy-eyeballs fallback, declined subscriptions and periodic refresh."""
    result = benchmark.pedantic(lambda: run_compatibility(ttl=30), rounds=1, iterations=1)
    table = format_table(result.rows())
    attach(benchmark, compatibility_table=table)
    print("\n§4.5 — compatibility with non-MoQT authoritative servers\n" + table)

    baseline = result.outcome("moqt-everywhere (baseline)")
    decline = result.outcome("decline (auth UDP-only)")
    refresh = result.outcome("periodic-refresh (auth UDP-only)")
    assert baseline.resolved and decline.resolved and refresh.resolved
    assert decline.answer_via_udp_fallback and refresh.answer_via_udp_fallback
    assert not decline.update_delivered
    assert refresh.update_delivered
    # Refresh keeps subscribers within ~one TTL of the origin; native MoQT is
    # within one propagation delay.
    assert baseline.update_latency < 0.1
    assert refresh.update_latency <= 45.0
