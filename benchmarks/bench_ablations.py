"""Ablations of the design choices called out in DESIGN.md.

Two choices the paper makes are quantified here:

* §4.1: objects are delivered on QUIC *streams* rather than datagrams "to
  avoid losing messages due to the unreliability of datagrams" — the ablation
  pushes updates over both delivery modes across a lossy link and compares
  how many arrive;
* §3: relays let the authoritative server fan out one update to many
  subscribers — the ablation compares the number of objects the origin must
  transmit with and without a relay in front of N subscribers.
"""

from __future__ import annotations

from conftest import attach

from repro.experiments.report import format_table
from repro.moqt.objectmodel import MoqtObject, TrackState
from repro.moqt.relay import MoqtRelay
from repro.moqt.session import FetchResult, MoqtSession, MoqtSessionConfig, SubscribeResult
from repro.moqt.track import FullTrackName
from repro.netsim.link import LinkConfig
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.quic.connection import ConnectionConfig
from repro.quic.endpoint import QuicEndpoint
from repro.quic.tls import ServerTlsContext

TRACK = FullTrackName.of(["dns", "a"], b"cdn.example")


class _OneTrackPublisher:
    """Minimal publisher delegate serving a single track."""

    def __init__(self) -> None:
        self.state = TrackState(TRACK)
        self.state.publish(MoqtObject(group_id=1, object_id=0, payload=b"v1" * 64))

    def handle_subscribe(self, session, message):
        return SubscribeResult(ok=True, largest=self.state.largest)

    def handle_fetch(self, session, message, full_track_name):
        return FetchResult(ok=True, objects=self.state.latest_objects(1), largest=self.state.largest)


def _push_updates(use_datagrams: bool, loss_rate: float, updates: int = 50) -> int:
    """Publish ``updates`` objects across a lossy link; return how many arrive."""
    simulator = Simulator(seed=99)
    network = Network(simulator)
    network.add_host("pub")
    network.add_host("sub")
    network.connect("pub", "sub", LinkConfig(delay=0.02, loss_rate=loss_rate))
    delegate = _OneTrackPublisher()
    config = MoqtSessionConfig(use_datagrams=use_datagrams)
    publisher_sessions = []
    QuicEndpoint(
        network.host("pub"),
        port=4443,
        server_tls=ServerTlsContext(alpn_protocols=("moq-00",)),
        on_connection=lambda conn: publisher_sessions.append(
            MoqtSession(conn, is_client=False, config=config, publisher_delegate=delegate)
        ),
    )
    client_endpoint = QuicEndpoint(network.host("sub"))
    connection = client_endpoint.connect(
        Address("pub", 4443), ConnectionConfig(alpn_protocols=("moq-00",))
    )
    session = MoqtSession(connection, is_client=True, config=config)
    received = []
    session.subscribe(TRACK, on_object=lambda obj: received.append(obj.group_id))
    simulator.run(until=5.0)
    publisher = publisher_sessions[0]
    publisher_subscription = publisher.publisher_subscriptions()[0]
    for version in range(2, updates + 2):
        obj = MoqtObject(group_id=version, object_id=0, payload=b"update" * 50)
        delegate.state.publish(obj)
        publisher.publish(publisher_subscription, obj)
        simulator.run(until=simulator.now + 1.0)
    simulator.run(until=simulator.now + 30.0)
    return len(set(received))


def test_streams_vs_datagrams_under_loss(benchmark):
    """§4.1 ablation: reliable streams vs unreliable datagrams at 20% loss."""
    def run():
        return {
            "streams": _push_updates(use_datagrams=False, loss_rate=0.2),
            "datagrams": _push_updates(use_datagrams=True, loss_rate=0.2),
            "updates_published": 50,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table([result])
    attach(benchmark, delivery_table=table)
    print("\nAblation — update delivery under 20% loss (out of 50 updates)\n" + table)
    assert result["streams"] == 50, "stream delivery is reliable"
    assert result["datagrams"] < 50, "datagram delivery loses updates"


def _origin_objects_sent(subscribers: int, via_relay: bool, updates: int = 10) -> tuple[int, int]:
    """Return (objects sent by origin, objects received by all subscribers)."""
    simulator = Simulator(seed=7)
    network = Network(simulator)
    network.add_host("origin")
    network.add_host("relay")
    for index in range(subscribers):
        network.add_host(f"sub{index}")
    network.connect("origin", "relay", LinkConfig(delay=0.02))
    for index in range(subscribers):
        network.connect("relay", f"sub{index}", LinkConfig(delay=0.01))
        network.connect("origin", f"sub{index}", LinkConfig(delay=0.03))

    delegate = _OneTrackPublisher()
    origin_sessions = []
    QuicEndpoint(
        network.host("origin"),
        port=4443,
        server_tls=ServerTlsContext(alpn_protocols=("moq-00",)),
        on_connection=lambda conn: origin_sessions.append(
            MoqtSession(conn, is_client=False, publisher_delegate=delegate)
        ),
    )
    relay = MoqtRelay(network.host("relay"), upstream=Address("origin", 4443))
    target = Address("relay", 4443) if via_relay else Address("origin", 4443)

    received = []
    for index in range(subscribers):
        endpoint = QuicEndpoint(network.host(f"sub{index}"))
        connection = endpoint.connect(target, ConnectionConfig(alpn_protocols=("moq-00",)))
        session = MoqtSession(connection, is_client=True)
        session.subscribe(TRACK, on_object=lambda obj: received.append(obj.group_id))
    simulator.run(until=5.0)

    for version in range(2, updates + 2):
        obj = MoqtObject(group_id=version, object_id=0, payload=b"x" * 200)
        delegate.state.publish(obj)
        for origin_session in origin_sessions:
            for publisher_subscription in origin_session.publisher_subscriptions():
                origin_session.publish(publisher_subscription, obj)
        simulator.run(until=simulator.now + 0.5)
    simulator.run(until=simulator.now + 5.0)
    origin_sent = sum(session.statistics.objects_sent for session in origin_sessions)
    return origin_sent, len(received)


def test_relay_fanout_reduces_origin_load(benchmark):
    """§3 ablation: a relay aggregates N subscriptions into one origin stream."""
    subscribers = 8

    def run():
        direct_sent, direct_received = _origin_objects_sent(subscribers, via_relay=False)
        relayed_sent, relayed_received = _origin_objects_sent(subscribers, via_relay=True)
        return {
            "subscribers": subscribers,
            "direct_origin_objects": direct_sent,
            "relay_origin_objects": relayed_sent,
            "direct_delivered": direct_received,
            "relay_delivered": relayed_received,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table([result])
    attach(benchmark, fanout_table=table)
    print("\nAblation — origin load with and without a relay (10 updates)\n" + table)
    assert result["direct_delivered"] == result["relay_delivered"] == subscribers * 10
    assert result["relay_origin_objects"] * subscribers <= result["direct_origin_objects"] + 1
