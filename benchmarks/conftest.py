"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's figures or quantitative
claims.  The produced tables are attached to the benchmark's ``extra_info``
so ``pytest benchmarks/ --benchmark-only -rA`` shows both the timing and the
reproduced numbers; ``EXPERIMENTS.md`` records the same tables.
"""

from __future__ import annotations


def attach(benchmark, **extra) -> None:
    """Attach experiment outputs to the benchmark record."""
    for key, value in extra.items():
        benchmark.extra_info[key] = value
