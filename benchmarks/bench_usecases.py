"""E7/E8 / §5.3 — use-case traffic estimates (DDNS, CDN, deep space)."""

from __future__ import annotations

from conftest import attach

from repro.experiments.report import format_table
from repro.experiments.usecases import PAPER_CDN_STUB_KBPS, PAPER_DDNS_GBPS, run_usecases


def test_usecase_estimates(benchmark):
    """Reproduce the paper's back-of-envelope numbers and cross-check by simulation."""
    result = benchmark.pedantic(
        lambda: run_usecases(
            simulated_domains=20, simulated_update_interval=10.0, simulated_duration=120.0
        ),
        rounds=1,
        iterations=1,
    )
    table = format_table(result.rows())
    attach(
        benchmark,
        usecase_table=table,
        ddns_gbps=result.ddns.gbps,
        cdn_stub_kbps=result.cdn_stub.kbps,
        simulation_relative_error=result.cdn_simulation_relative_error,
    )
    print("\n§5.3 — use-case estimates\n" + table)
    assert abs(result.ddns.gbps - PAPER_DDNS_GBPS) / PAPER_DDNS_GBPS < 0.05
    assert abs(result.cdn_stub.kbps - PAPER_CDN_STUB_KBPS) / PAPER_CDN_STUB_KBPS < 0.01
    assert result.cdn_simulation_relative_error < 0.05
