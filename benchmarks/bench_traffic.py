"""E6 / §5 — upstream message counts: polling vs pub/sub pushes."""

from __future__ import annotations

from conftest import attach

from repro.experiments.report import format_table
from repro.experiments.traffic import run_traffic


def test_update_traffic(benchmark):
    """Messages seen by the authoritative server per (TTL, change interval)."""
    result = benchmark.pedantic(
        lambda: run_traffic(
            configurations=[(300, 3600.0), (60, 600.0), (10, 30.0), (300, 60.0)],
            duration=600.0,
        ),
        rounds=1,
        iterations=1,
    )
    table = format_table(result.rows())
    attach(benchmark, traffic_table=table)
    print("\n§5 — upstream messages over 600 s (polling vs pub/sub)\n" + table)

    by_config = {(s.ttl, s.change_interval): s for s in result.samples}
    # Records changing slower than their TTL: pub/sub strictly reduces traffic.
    assert by_config[(300, 3600.0)].measured_pubsub_messages < by_config[(300, 3600.0)].measured_polling_queries
    assert by_config[(60, 600.0)].measured_pubsub_messages < by_config[(60, 600.0)].measured_polling_queries
    assert by_config[(10, 30.0)].measured_pubsub_messages < by_config[(10, 30.0)].measured_polling_queries
    # Crossover: a hot record with a long TTL pushes more than polling would ask.
    assert by_config[(300, 60.0)].measured_pubsub_messages > by_config[(300, 60.0)].measured_polling_queries
    # Measured counts stay close to the closed-form model.
    for sample in result.samples:
        assert abs(sample.measured_polling_queries - sample.model.polling) <= 2
        assert abs(sample.measured_pubsub_messages - sample.model.pubsub) <= 2
