"""E1 / Fig. 1a — record-type coverage and TTL distribution of the top list."""

from __future__ import annotations

from conftest import attach

from repro.experiments.fig1a import run_fig1a
from repro.experiments.report import format_table


def test_fig1a_ttl_distribution(benchmark):
    """Regenerate Fig. 1a: per-type totals and TTL histograms."""
    result = benchmark.pedantic(
        lambda: run_fig1a(population=10_000), rounds=1, iterations=1
    )
    totals = format_table(result.total_rows())
    histogram = format_table(result.ttl_rows())
    attach(
        benchmark,
        totals_table=totals,
        ttl_histogram=histogram,
        https_share_at_300=result.https_share_at_300(),
    )
    print("\nFig. 1a — record-type totals (measured vs paper)\n" + totals)
    print("\nFig. 1a — TTL histogram per record type\n" + histogram)
    for row in result.total_rows():
        assert abs(row["measured_fraction"] - row["paper_fraction"]) < 0.03
    assert result.https_share_at_300() > 0.85
