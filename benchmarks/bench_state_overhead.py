"""E9 / §5.1 — state-management overhead and §4.4 teardown policies."""

from __future__ import annotations

from conftest import attach

from repro.experiments.report import format_mapping, format_table
from repro.experiments.state_overhead import run_state_overhead


def test_state_overhead_and_teardown_policies(benchmark):
    """State kept by a resolver per teardown policy, plus classic-vs-MoQT bytes."""
    result = benchmark.pedantic(
        lambda: run_state_overhead(questions=1000, duration=86_400.0), rounds=1, iterations=1
    )
    table = format_table(result.rows())
    comparison = format_mapping(result.classic_vs_moqt, title="classic vs MoQT state (bytes)")
    attach(benchmark, policy_table=table, classic_vs_moqt=result.classic_vs_moqt)
    print("\n§5.1/§4.4 — subscription state per teardown policy\n" + table)
    print(comparison)

    by_name = {outcome.policy: outcome for outcome in result.policies}
    assert by_name["never"].forced_resubscriptions == 0
    assert by_name["never"].tracked_at_end == result.questions
    # Every other policy trades state for re-subscriptions.
    for name in ("idle-timeout", "lru-budget", "adaptive"):
        assert by_name[name].state_bytes <= by_name["never"].state_bytes
        assert by_name[name].torn_down > 0
    assert result.classic_vs_moqt["extra_bytes"] > 0
