"""E4 / §5.2 — query latency per transport scenario, measured vs modelled."""

from __future__ import annotations

import pytest
from conftest import attach

from repro.experiments.query_latency import run_query_latency, run_rtt_sweep
from repro.experiments.report import format_table


def test_query_latency_scenarios(benchmark):
    """First-lookup latency: UDP vs MoQT cold / reused / 0-RTT / 0-RTT+ALPN / pushed."""
    result = benchmark.pedantic(
        lambda: run_query_latency(stub_rtt=0.010, upstream_rtt=0.040), rounds=1, iterations=1
    )
    table = format_table(result.rows())
    attach(benchmark, latency_table=table)
    print("\n§5.2 — query latency per scenario (10 ms stub RTT, 40 ms upstream RTT)\n" + table)
    for measurement in result.measurements:
        assert measurement.relative_error < 0.02, measurement.scenario
    assert result.measurement("moqt-cold").measured > result.measurement("udp-first").measured
    assert result.measurement("moqt-reused").measured == pytest.approx(
        result.measurement("udp-first").measured, rel=1e-6
    )
    assert result.measurement("moqt-pushed").measured == 0.0


def test_query_latency_rtt_sweep(benchmark):
    """The same comparison across upstream RTTs (the gap grows with the RTT)."""
    results = benchmark.pedantic(
        lambda: run_rtt_sweep([0.020, 0.080]), rounds=1, iterations=1
    )
    rows = []
    for result in results:
        for measurement in result.measurements:
            rows.append(
                {
                    "upstream_rtt_ms": result.upstream_rtt * 1000,
                    **measurement.as_row(),
                }
            )
    table = format_table(rows)
    attach(benchmark, sweep_table=table)
    print("\n§5.2 — query latency sweep over upstream RTTs\n" + table)
    for result in results:
        cold = result.measurement("moqt-cold").measured
        udp = result.measurement("udp-first").measured
        assert cold > 2.5 * udp / 1.3  # cold MoQT pays ~3x the per-hop cost
