#!/usr/bin/env python3
"""Quickstart: one DNS-over-MoQT lookup, then a pushed record update.

The script builds the three-level hierarchy of Fig. 2 on the discrete-event
simulator (stub + forwarder, recursive resolver, root / TLD / authoritative
servers — every authority speaking both classic DNS and MoQT), performs a
cold lookup through the forwarder, and then changes the record at the
authoritative zone to show the update being *pushed* all the way to the stub
without any new request.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.mapping import DnsQuestionKey
from repro.dns.name import Name
from repro.dns.types import RecordType
from repro.experiments.topology import SmallTopology, SmallTopologyConfig


def main() -> None:
    config = SmallTopologyConfig(
        domain="www.example.com.",
        record_ttl=300,
        stub_rtt=0.010,       # 10 ms between stub and recursive resolver
        upstream_rtt=0.040,   # 40 ms between resolver and each authority
    )
    topology = SmallTopology(config)
    simulator = topology.simulator
    key = DnsQuestionKey(qname=Name.from_text(config.domain), qtype=RecordType.A)

    print("== 1. Cold lookup over DNS-over-MoQT (subscribe + joining fetch) ==")
    started = simulator.now

    def on_answer(message, version):
        addresses = [record.rdata.to_text() for record in message.answers]
        latency_ms = (simulator.now - started) * 1000
        print(f"  answer after {latency_ms:.1f} ms: {addresses} (zone version {version})")
        print("  (3 RTTs per hop: QUIC handshake, MoQT session, subscribe+fetch)")

    topology.forwarder.resolve(key, on_answer)
    topology.run(5.0)

    print("\n== 2. Warm lookup: the forwarder answers locally, zero packets ==")
    datagrams_before = topology.network.total_link_statistics()["datagrams_sent"]
    topology.forwarder.resolve(
        key,
        lambda message, version: print(
            f"  answer immediately: {[r.rdata.to_text() for r in message.answers]}"
        ),
    )
    datagrams_after = topology.network.total_link_statistics()["datagrams_sent"]
    print(f"  datagrams sent for the warm lookup: {datagrams_after - datagrams_before}")

    print("\n== 3. The record changes at the authoritative server ==")
    updates = []
    topology.forwarder.on_record_updated.append(
        lambda _key, record: updates.append((simulator.now, record))
    )
    change_time = simulator.now
    new_serial = topology.update_record("203.0.113.77")
    print(f"  zone serial bumped to {new_serial}; the server pushes the new version")
    topology.run(2.0)
    push_time, record = updates[0]
    print(
        f"  pushed update reached the stub after {(push_time - change_time) * 1000:.1f} ms: "
        f"{[r.rdata.to_text() for r in record.message.answers]}"
    )
    print(
        "  (a TTL-based cache would have served the stale record for up to "
        f"{config.record_ttl} s)"
    )

    print("\n== 4. Resolver state (the §5.1 trade-off) ==")
    for name, value in topology.moqt_recursive.state_summary().items():
        print(f"  {name}: {value}")


if __name__ == "__main__":
    main()
