#!/usr/bin/env python3
"""CDN relay trees: one origin serving a thousand resolvers (§3, §5.3).

The paper's answer to "how does one authoritative server push DNS updates to
millions of resolvers?" is MoQT's relay fan-out: payload-oblivious relays
arranged in a tree, each tier aggregating its subtree into a single upstream
subscription.  This walkthrough builds the CDN shape with
``repro.relaynet`` — origin -> 4 mid relays -> 16 edge relays -> 1,000
subscribed resolvers — pushes a batch of record updates, and shows:

* per-tier link traffic, measured on the simulated links and compared with
  the closed-form model in ``repro.analysis.fanout``;
* origin egress staying at O(branching factor) while a unicast origin would
  send one copy per subscriber;
* a late resolver's FETCH being answered from an edge relay's cache without
  ever reaching the origin.

Run with:  python examples/cdn_relay_tree.py
"""

from __future__ import annotations

from repro.analysis.fanout import fanout_model
from repro.experiments.relay_fanout import (
    MOQT_ALPN,
    ORIGIN_HOST,
    ORIGIN_PORT,
    TRACK,
    build_origin,
    run_relay_fanout,
)
from repro.experiments.report import format_table
from repro.moqt.objectmodel import MoqtObject
from repro.moqt.session import MoqtSession
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.quic.connection import ConnectionConfig
from repro.quic.endpoint import QuicEndpoint
from repro.relaynet import RelayNetStats, RelayTreeBuilder, RelayTreeSpec


def fanout_scaling() -> None:
    print("== Scaling a 3-tier CDN tree: 4 mid + 16 edge relays ==\n")
    result = run_relay_fanout(subscriber_counts=(10, 100, 1000), updates=5)
    print(format_table(result.rows()))
    last = result.samples[-1]
    print(
        f"\n  origin egress stays at {last.measured_origin_objects} objects while a"
        f" unicast origin would send {last.model.unicast_messages} —"
        f" {last.model.origin_reduction_factor:.0f}x less origin traffic\n"
    )
    print("-- Per-tier link traffic (1,000 subscribers), measured vs model --")
    print(format_table(last.tier_rows()))
    print()


def edge_cache_walkthrough() -> None:
    print("== A late resolver joins: FETCH served from the edge cache ==\n")
    simulator = Simulator(seed=11)
    network = Network(simulator)
    publisher = build_origin(network)
    spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
    tree = RelayTreeBuilder(network, Address(ORIGIN_HOST, ORIGIN_PORT)).build(spec)
    tree.attach_subscribers(8)
    tree.subscribe_all(TRACK)
    simulator.run(until=simulator.now + 2.0)
    publisher.push(MoqtObject(group_id=2, object_id=0, payload=b"192.0.2.77 via edge"))
    simulator.run(until=simulator.now + 2.0)

    # A resolver that joins now fetches the current record version; the edge
    # relay answers from its cache, so the request never travels upstream.
    edge = tree.leaves()[0]
    late_host = network.add_host("late-resolver")
    network.connect(edge.host, late_host, spec.subscriber_link)
    connection = QuicEndpoint(late_host).connect(
        edge.address, ConnectionConfig(alpn_protocols=(MOQT_ALPN,))
    )
    late = MoqtSession(connection, is_client=True)
    fetched = []
    subscription = late.subscribe(TRACK)
    late.joining_fetch(subscription, 1, on_complete=lambda f: fetched.append(f))
    simulator.run(until=simulator.now + 2.0)

    stats = RelayNetStats.collect(tree)
    payload = fetched[0].objects[-1].payload.decode()
    print(f"  late resolver fetched {payload!r} in {simulator.now:.2f}s of virtual time")
    print(f"  answered from the edge cache: hits={stats.cache_hits} misses={stats.cache_misses}")
    print(f"  (the origin still only ever saw {len(publisher.sessions)} mid-tier sessions)\n")


def million_resolver_estimate() -> None:
    print("== Extrapolating to the paper's 'millions of resolvers' ==\n")
    model = fanout_model(
        subscribers=1_000_000, updates=1, tier_sizes=(10, 1000), bytes_per_update=340
    )
    print(
        "  1M resolvers behind 1,000 edge relays: one record change costs the origin"
        f" {model.origin_messages} pushes ({model.origin_egress_bytes / 1000:.1f} kB)"
    )
    print(
        f"  unicast would need {model.unicast_messages:,} pushes"
        f" ({model.unicast_origin_bytes / 1e6:.0f} MB) — the tree absorbs"
        f" {model.origin_reduction_factor:,.0f}x"
    )


def main() -> None:
    fanout_scaling()
    edge_cache_walkthrough()
    million_resolver_estimate()


if __name__ == "__main__":
    main()
