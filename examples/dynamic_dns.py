#!/usr/bin/env python3
"""Dynamic DNS: home servers behind changing IP addresses (§1, §5.3).

A home user runs a server behind an ISP connection whose address changes a
couple of times per day.  With DNS over MoQT, the parties interested in that
host subscribe once and receive every address change as a push — this example
simulates one such domain with a handful of subscribed resolvers, shows the
update reaching all of them within propagation delay, and reproduces the
paper's global traffic estimate (~5.5 Gbit/s for 100 M users).

Run with:  python examples/dynamic_dns.py
"""

from __future__ import annotations

from repro.analysis.usecases import ddns_update_traffic_bps
from repro.core.mapping import DnsQuestionKey, question_to_track
from repro.dns.name import Name
from repro.dns.types import RecordType
from repro.experiments.topology import AUTH_HOST, STUB_HOST, SmallTopology, SmallTopologyConfig
from repro.moqt.session import MoqtSession
from repro.netsim.packet import Address
from repro.quic.connection import ConnectionConfig
from repro.quic.endpoint import QuicEndpoint


def main() -> None:
    config = SmallTopologyConfig(domain="myhome.example.com.", record_ttl=60,
                                 initial_address="203.0.113.10")
    topology = SmallTopology(config)
    simulator = topology.simulator
    key = DnsQuestionKey(qname=Name.from_text(config.domain), qtype=RecordType.A)

    print("== Dynamic DNS over MoQT ==")
    print(f"domain: {config.domain}  initial address: {config.initial_address}\n")

    # The forwarder on the stub host subscribes via the recursive resolver,
    # and three additional interested parties subscribe straight to the
    # authoritative server (e.g. friends' resolvers elsewhere).
    topology.forwarder.resolve(key, lambda message, version: None)
    interested = []
    for index in range(3):
        endpoint = QuicEndpoint(topology.network.host(STUB_HOST))
        connection = endpoint.connect(
            Address(AUTH_HOST, 4443), ConnectionConfig(alpn_protocols=("moq-00",))
        )
        session = MoqtSession(connection, is_client=True)
        received: list[float] = []
        session.subscribe(question_to_track(key), on_object=lambda obj, r=received: r.append(simulator.now))
        interested.append(received)
    topology.run(5.0)
    print(f"subscribers attached: forwarder + {len(interested)} direct MoQT subscribers")

    # The ISP reassigns the address twice (the paper's two updates per day).
    for new_address in ("203.0.113.111", "198.51.100.23"):
        change_time = simulator.now
        updates: list[float] = []
        topology.forwarder.on_record_updated.append(
            lambda _key, record, u=updates: u.append(simulator.now)
        )
        topology.update_record(new_address)
        topology.run(2.0)
        delays = [u[-1] - change_time for u in interested if u] + (
            [updates[0] - change_time] if updates else []
        )
        print(
            f"address change to {new_address}: pushed to {len(delays)} subscribers, "
            f"max delay {max(delays) * 1000:.1f} ms"
        )

    auth_stats = topology.moqt_auth.statistics
    print(f"\nauthoritative server pushed {auth_stats.updates_published} objects "
          f"({auth_stats.update_bytes_published} bytes) for 2 address changes")

    print("\n== Scaling to the paper's global estimate ==")
    estimate = ddns_update_traffic_bps(users=100e6, interested_per_user=1000,
                                       updates_per_day=2, update_size_bytes=300)
    print(
        "100M users x 2 updates/day x 1000 interested parties x 300 B "
        f"= {estimate.gbps:.2f} Gbit/s globally (paper: ~5.5 Gbit/s) — negligible at global scale"
    )


if __name__ == "__main__":
    main()
