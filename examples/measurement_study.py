#!/usr/bin/env python3
"""Reproduce the paper's §2 measurement study on the synthetic top list.

Prints the Fig. 1a record-type totals and TTL histograms and the Fig. 1b
change-count percentiles per TTL cluster, using the same methodology as the
paper (300 TTL-spaced observations, lexicographically ordered comparison).

Run with:  python examples/measurement_study.py [population]
"""

from __future__ import annotations

import sys

from repro.experiments.fig1a import run_fig1a
from repro.experiments.fig1b import run_fig1b
from repro.experiments.report import format_table


def main() -> None:
    population = int(sys.argv[1]) if len(sys.argv) > 1 else 5000

    print(f"== Fig. 1a — record types and TTLs of the synthetic top-{population} ==\n")
    fig1a = run_fig1a(population=population)
    print(format_table(fig1a.total_rows()))
    print()
    print(format_table(fig1a.ttl_rows()))
    print(f"\nHTTPS records with TTL 300 s: {fig1a.https_share_at_300() * 100:.1f}% "
          "(the paper observes them 'almost exclusively' at 300 s)\n")

    print("== Fig. 1b — A-record changes over 300 TTL-spaced observations ==\n")
    fig1b = run_fig1b(
        population=min(population, 3000), observations=300, max_domains_per_ttl=150
    )
    print(format_table(fig1b.rows()))
    print(
        "\nPaper's headline: TTLs <= 300 s show >= 71 changes at the 90th percentile, "
        "TTLs >= 600 s show none."
    )
    print(
        f"Measured: low-TTL p90 minimum = {fig1b.low_ttl_p90_minimum():.0f}, "
        f"high-TTL p90 maximum = {fig1b.high_ttl_p90_maximum():.0f}, "
        f"shape matches: {fig1b.matches_paper_shape()}"
    )


if __name__ == "__main__":
    main()
