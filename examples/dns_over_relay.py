#!/usr/bin/env python3
"""DNS over relaynet: resolvers served by a CDN relay tree (§3, §5.3).

The fan-out experiments push opaque objects through relay trees; this
walkthrough closes the loop with *real DNS tracks*: an authoritative
DNS-over-MoQT server sits at the origin of a CDN relay hierarchy, and the
DNS-side clients point at **edge relays** instead of the authoritative
server —

* a :class:`~repro.core.forwarder.MoqForwarder` (the stub-side proxy an
  application talks to) uses an edge relay as its upstream;
* a :class:`~repro.core.recursive.MoqRecursiveResolver` lists another edge
  relay as its MoQT root server.

Because relays are payload-oblivious, neither endpoint can tell the
difference: the SUBSCRIBE/FETCH for the question track is aggregated up
the tree, the answer comes back out of the relay caches, and when the
zone changes, the authoritative server pushes one object per direct child
and the tree fans it out to every subscribed resolver.

Run with:  python examples/dns_over_relay.py
"""

from __future__ import annotations

from repro.core.auth_server import MoqAuthoritativeServer
from repro.core.forwarder import MoqForwarder
from repro.core.mapping import DnsQuestionKey
from repro.core.recursive import MoqRecursiveResolver
from repro.dns.name import Name
from repro.dns.rdata import ARdata
from repro.dns.rr import ResourceRecord, RRset
from repro.dns.types import RecordType
from repro.dns.zone import Zone
from repro.netsim.link import LinkConfig
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator
from repro.relaynet import RelayNetStats, RelayTreeBuilder, RelayTreeSpec

DOMAIN = "cdn.example."
INITIAL_ADDRESS = "198.51.100.10"
UPDATED_ADDRESS = "203.0.113.99"


def answer_text(message) -> str:
    """The A record(s) in a DNS response, as text."""
    if message is None:
        return "(no answer)"
    return ", ".join(record.rdata.to_text() for record in message.answers)


def main() -> None:
    simulator = Simulator(seed=31)
    network = Network(simulator)

    # The authoritative DNS-over-MoQT server is the origin of the tree.  It
    # serves the parent zone too, so the recursive resolver's delegation walk
    # (example. NS, then cdn.example. A) stays entirely inside the tree.
    auth_host = network.add_host("auth.cdn.example")
    zone = Zone("cdn.example.")
    zone.add(Name.from_text(DOMAIN), "A", INITIAL_ADDRESS, ttl=60, bump=False)
    parent_zone = Zone("example.")
    parent_zone.add(Name.from_text("example."), "NS", "ns.cdn.example.", ttl=3600, bump=False)
    auth = MoqAuthoritativeServer(auth_host, [zone, parent_zone])

    spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
    tree = RelayTreeBuilder(network, auth.address).build(spec)
    edges = tree.tier("edge")

    print("== DNS over relaynet: auth origin -> 2 mid -> 4 edge relays ==\n")

    # A stub-side forwarder whose "recursive resolver" is edge-0.
    stub_host = network.add_host("stub")
    network.connect(stub_host, edges[0].host, LinkConfig(delay=0.005))
    forwarder = MoqForwarder(stub_host, recursive_moqt_address=edges[0].address)

    # A recursive resolver whose MoQT root server list names edge-1.
    resolver_host = network.add_host("resolver")
    network.connect(resolver_host, edges[1].host, LinkConfig(delay=0.005))
    resolver = MoqRecursiveResolver(resolver_host, root_servers=[edges[1].address])

    key = DnsQuestionKey(qname=Name.from_text(DOMAIN), qtype=RecordType.A)
    results: dict[str, tuple[str, float]] = {}
    start = simulator.now
    forwarder.resolve(
        key,
        lambda message, version: results.__setitem__(
            "forwarder via edge-0", (answer_text(message), simulator.now - start)
        ),
    )
    resolver.resolve(
        key,
        lambda outcome: results.__setitem__(
            "resolver via edge-1", (answer_text(outcome.message), simulator.now - start)
        ),
    )
    simulator.run(until=simulator.now + 5.0)

    for who, (answer, latency) in sorted(results.items()):
        print(f"  {who}: {DOMAIN} A = {answer}  ({latency * 1000:.1f} ms)")
    stats = RelayNetStats.collect(tree)
    print(
        f"  relay caches answered the joining FETCHes: "
        f"hits={stats.cache_hits} misses={stats.cache_misses}"
    )
    print(
        f"  the authoritative server saw {auth.statistics.sessions_accepted} sessions"
        f" (mid tier only) and {auth.statistics.fetches_served} fetch(es)\n"
    )

    # Change the zone: the push fans out through the tree to both clients.
    print(f"== Zone update: {DOMAIN} A -> {UPDATED_ADDRESS} ==\n")
    push_times: dict[str, float] = {}
    forwarder.on_record_updated.append(
        lambda _key, record: push_times.__setitem__("forwarder via edge-0", simulator.now)
    )
    change_at = simulator.now
    record = ResourceRecord(
        Name.from_text(DOMAIN), RecordType.A, ARdata(UPDATED_ADDRESS), 60
    )
    zone.replace_rrset(RRset(Name.from_text(DOMAIN), RecordType.A, [record]))
    simulator.run(until=simulator.now + 3.0)

    for who, at in sorted(push_times.items()):
        print(f"  push reached {who} after {(at - change_at) * 1000:.1f} ms")
    entry = resolver.record(key)
    if entry is not None:
        print(f"  resolver record now: {answer_text(entry.message)} (version {entry.version})")
    forwarder_record = forwarder.record(key)
    if forwarder_record is not None:
        print(
            f"  forwarder record now: {answer_text(forwarder_record.message)}"
            f" (version {forwarder_record.version})"
        )
    print(
        f"\n  the origin pushed {auth.statistics.updates_published} object(s) for the change;"
        f" the tree delivered it to every subscribed resolver"
    )


if __name__ == "__main__":
    main()
