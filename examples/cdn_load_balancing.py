#!/usr/bin/env python3
"""CDN load balancing: short-TTL records that change constantly (§1, §5.3).

CDNs use DNS with short TTLs to steer clients between servers as load
shifts.  This example runs one CDN-style record (TTL 10 s, a new set of
addresses every 30 s) for ten minutes and compares, side by side:

* how many requests a continuously interested classic resolver sends to the
  authoritative server vs. how many objects the MoQT server pushes;
* how stale the record is at the client when it changes, for both flavours;
* the per-stub downstream update bitrate, compared with the paper's
  240 kbit/s estimate for 1 000 subscribed domains updating every 10 s.

Run with:  python examples/cdn_load_balancing.py
"""

from __future__ import annotations

from repro.analysis.traffic import traffic_comparison
from repro.analysis.usecases import cdn_stub_traffic_bps
from repro.experiments.report import format_table
from repro.experiments.staleness import run_staleness
from repro.experiments.traffic import run_traffic


def main() -> None:
    ttl = 10
    change_interval = 30.0
    duration = 600.0

    print("== CDN-style record: TTL 10 s, address set changes every 30 s ==\n")

    print("-- Upstream messages at the authoritative server over 10 minutes --")
    traffic = run_traffic(configurations=[(ttl, change_interval)], duration=duration)
    print(format_table(traffic.rows()))
    sample = traffic.samples[0]
    print(
        f"\n  pub/sub sends {sample.measured_pubsub_messages} pushes instead of "
        f"{sample.measured_polling_queries} polls "
        f"({sample.measured_reduction_factor:.1f}x fewer messages)\n"
    )

    print("-- Staleness when the record changes (lower is fresher) --")
    staleness = run_staleness(ttls=[ttl], change_offsets=[0.25, 0.5, 0.75])
    print(format_table(staleness.rows()))
    print(
        f"\n  subscribed resolvers are ~{staleness.model_pubsub * 1000:.0f} ms behind the origin;"
        " TTL-based caches lag by a good part of the TTL\n"
    )

    print("-- Scaling to a whole stub (the paper's §5.3 estimate) --")
    estimate = cdn_stub_traffic_bps(subscribed_domains=1000, update_interval_seconds=10.0)
    print(f"  1000 subscribed domains x 1 update/10 s x 300 B = {estimate.kbps:.0f} kbit/s per stub")
    model = traffic_comparison(duration=86400, ttl=ttl, change_interval=change_interval,
                               resolvers=1000, include_setup=False)
    print(
        f"  over a day, 1000 interested resolvers would poll {model.polling:.0f} times; "
        f"pub/sub pushes {model.pubsub:.0f} objects"
    )


if __name__ == "__main__":
    main()
