#!/usr/bin/env python3
"""Deep space DNS: pre-positioning records across interplanetary links (§1, §5.3).

The IETF TIPTOP work explores running IP (and DNS) across deep-space links
where a single round trip takes minutes.  Handshake-heavy lookups are
hopeless there; actively replicating records to the remote site is the
proposed alternative.  This example places a "Mars" recursive resolver behind
a long-delay link, lets it subscribe to the records its site needs while the
link is available, and then shows that

* local lookups on Mars are answered immediately from the replicated state,
  with zero light-trip waits;
* an on-Earth record change reaches Mars after exactly one one-way
  propagation delay — rather than TTL expiry plus three round trips;
* throttling high-churn (CDN-style) records keeps the update traffic tiny.

The one-way delay is set to 60 s so the example finishes quickly; real
Mars delays (3–22 minutes) only scale the same numbers.

Run with:  python examples/deep_space.py
"""

from __future__ import annotations

from repro.analysis.usecases import deep_space_update_traffic_bps
from repro.core.forwarder import ForwarderConfig, MoqForwarder
from repro.core.mapping import DnsQuestionKey
from repro.core.session_manager import SessionManagerConfig
from repro.dns.name import Name
from repro.dns.types import RecordType
from repro.experiments.topology import RECURSIVE_HOST, STUB_HOST, SmallTopology, SmallTopologyConfig
from repro.netsim.link import LinkConfig
from repro.netsim.packet import Address

ONE_WAY_DELAY = 60.0  # seconds Earth -> Mars
MARS_HOST = "10.99.0.1"


def main() -> None:
    # Earth side: the usual hierarchy with an MoQT recursive resolver.  The
    # resolver's stub-facing QUIC parameters are relaxed so connections from
    # Mars survive the path delay (no 30 s idle timeout, RTT-sized
    # retransmission timer).
    from repro.quic.connection import ConnectionConfig

    config = SmallTopologyConfig(
        domain="ops.mission.example.",
        record_ttl=300,
        resolver_downstream_connection=ConnectionConfig(
            alpn_protocols=("moq-00",),
            idle_timeout=1e9,
            initial_rtt=2 * ONE_WAY_DELAY,
        ),
    )
    topology = SmallTopology(config)
    simulator = topology.simulator
    network = topology.network

    # Mars side: a forwarder behind a 60 s one-way link to Earth's resolver.
    network.add_host(MARS_HOST)
    network.connect(
        MARS_HOST,
        RECURSIVE_HOST,
        LinkConfig(delay=ONE_WAY_DELAY, bandwidth=2_000_000.0),
    )
    mars = MoqForwarder(
        network.host(MARS_HOST),
        recursive_moqt_address=Address(RECURSIVE_HOST, 4443),
        config=ForwarderConfig(
            upstream_timeout=20 * ONE_WAY_DELAY,
            # Deep-space transport profile (cf. the TIPTOP QUIC profile the
            # paper cites): no keepalives, effectively no idle timeout, and a
            # retransmission timer seeded with the real path RTT.
            session_manager=SessionManagerConfig(
                keepalive_interval=None,
                idle_timeout=1e9,
                initial_rtt=2 * ONE_WAY_DELAY,
            ),
        ),
    )
    key = DnsQuestionKey(qname=Name.from_text(config.domain), qtype=RecordType.A)

    print("== Deep-space DNS over MoQT (60 s one-way delay) ==\n")
    print("-- 1. Pre-positioning: Mars subscribes to the records it needs --")
    started = simulator.now
    answers = []
    mars.resolve(key, lambda message, version: answers.append(simulator.now - started))
    topology.run(20 * ONE_WAY_DELAY)
    print(f"  initial subscription + fetch completed after {answers[0] / 60:.1f} minutes "
          "(paid once, while the link is up)")

    print("\n-- 2. Local lookups on Mars are instant --")
    local = []
    mars.resolve(key, lambda message, version: local.append(message))
    print(f"  answer served locally: {[r.rdata.to_text() for r in local[0].answers]}"
          " (no light-trip round trips)")

    print("\n-- 3. A record change on Earth propagates in one one-way delay --")
    updates = []
    mars.on_record_updated.append(lambda _key, record: updates.append(simulator.now))
    change_time = simulator.now
    topology.update_record("198.51.100.42")
    topology.run(3 * ONE_WAY_DELAY)
    delay = updates[0] - change_time
    print(f"  new version on Mars after {delay / 60:.2f} minutes "
          f"(TTL-based caching could lag by up to {config.record_ttl / 60:.0f} minutes "
          "plus several round trips of re-resolution)")

    print("\n-- 4. Throttled update traffic towards the deep-space site --")
    estimate = deep_space_update_traffic_bps(
        subscribed_domains=10_000,
        update_interval_seconds=3600.0,
        throttled_fraction=0.9,
        throttled_interval_seconds=86_400.0,
    )
    print(
        "  10k subscribed domains, 90% throttled to daily forwarding: "
        f"{estimate.kbps:.2f} kbit/s across the deep-space link"
    )


if __name__ == "__main__":
    main()
