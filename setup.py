"""Setup shim for environments without the ``wheel`` package.

The project is fully described by ``pyproject.toml``; this file only exists so
that offline environments lacking ``wheel`` can still do a legacy editable
install (``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import setup

setup()
