"""Tests pinned to the megafan overhaul (allocation-free macro-scale fan-out).

Covers the netsim layer (link-batch delivery via ``Link.transmit_many``,
network batching regions, the refcounted ``DatagramPool``), the QUIC
preassembled-send fast path (wire identity with the general path, loss
recovery, the one-shot receive path), the MoQT fan-out fast path
(``publish_preencoded`` wire identity, shared decode memos) and the
perf-harness plumbing (``--repeat`` shapes, the regression gate).

The two headline guarantees:

* batched and unbatched delivery are *byte-identical* on the same seed
  (the determinism canary below runs a real CDN tree both ways);
* pooled datagram reuse never aliases live payloads — mutate-after-release
  must not be observable downstream (hypothesis property below).
"""

from __future__ import annotations

import json
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.relay_fanout import ORIGIN_HOST, ORIGIN_PORT, TRACK, build_origin
from repro.moqt.datastream import (
    DataStreamParser,
    decode_complete_datastream,
    encode_subgroup_object,
    encode_subgroup_stream_chunk,
)
from repro.moqt.objectmodel import MoqtObject
from repro.netsim.link import Link, LinkConfig
from repro.netsim.network import Network
from repro.netsim.packet import Address, Datagram, DatagramPool
from repro.netsim.simulator import Simulator
from repro.netsim.trace import NullTraceRecorder
from repro.quic.connection import ConnectionConfig, QuicConnection
from repro.quic.packet import Packet, PacketType
from repro.quic.stream import StreamDirection
from repro.relaynet import RelayTreeBuilder, RelayTreeSpec

SRC = Address("src-host", 1000)
DST = Address("dst-host", 2000)


def _make_connection(sent, handshake_complete=True, is_client=True):
    simulator = Simulator()
    connection = QuicConnection(
        simulator=simulator,
        send_datagram=lambda payload, destination: sent.append(bytes(payload)),
        local_address=Address("client", 1),
        peer_address=Address("server", 2),
        connection_id=(3 << 48) | 424242,
        is_client=is_client,
        config=ConnectionConfig(),
    )
    connection.handshake_complete = handshake_complete
    return simulator, connection


# ---------------------------------------------------------------------------
# netsim: link-batch delivery
# ---------------------------------------------------------------------------
class TestTransmitMany:
    def _links(self, simulator, count, config, delivered):
        links = []
        for index in range(count):
            links.append(
                Link(
                    simulator,
                    config,
                    lambda datagram, index=index: delivered.append((index, datagram)),
                )
            )
        return links

    def test_uniform_batch_is_one_event_with_order_preserved(self):
        simulator = Simulator()
        delivered: list[tuple[int, Datagram]] = []
        links = self._links(simulator, 8, LinkConfig(delay=0.01), delivered)
        entries = [
            (link, Datagram(SRC, DST, bytes([index]))) for index, link in enumerate(links)
        ]
        before = simulator.events_scheduled
        Link.transmit_many(simulator, entries)
        assert simulator.events_scheduled == before + 1  # one event for all 8
        simulator.run_until_idle()
        assert [index for index, _ in delivered] == list(range(8))
        assert simulator.now == pytest.approx(0.01)
        for link in links:
            assert link.statistics.datagrams_sent == 1
            assert link.statistics.datagrams_delivered == 1

    def test_mixed_delays_get_one_event_per_delay(self):
        simulator = Simulator()
        delivered: list[tuple[int, Datagram]] = []
        fast = self._links(simulator, 2, LinkConfig(delay=0.01), delivered)
        slow = self._links(simulator, 2, LinkConfig(delay=0.05), delivered)
        entries = [(link, Datagram(SRC, DST, b"x")) for link in (fast + slow)]
        before = simulator.events_scheduled
        Link.transmit_many(simulator, entries)
        assert simulator.events_scheduled == before + 2
        simulator.run_until_idle()
        assert len(delivered) == 4

    def test_constrained_links_are_batchable(self):
        # The old behaviour — bandwidth or loss forcing a silent per-datagram
        # fallback — is the bug this PR fixes: standard links are always
        # batchable now, whatever their configuration.
        simulator = Simulator()
        delivered: list[tuple[int, Datagram]] = []
        lossy = self._links(
            simulator, 1, LinkConfig(delay=0.01, bandwidth=1e6, loss_rate=0.5), delivered
        )
        assert lossy[0].batchable

    def test_non_batchable_entries_degrade_to_per_datagram_transmit(self):
        simulator = Simulator()
        delivered: list[tuple[int, Datagram]] = []
        links = self._links(simulator, 3, LinkConfig(delay=0.01), delivered)
        links[1].batchable = False  # explicit opt-out (subclass/test hook)
        entries = [(link, Datagram(SRC, DST, b"x")) for link in links]
        before = simulator.events_scheduled

        class Sink:
            link_batch_fallback_waves = 0

            def begin_batch(self):
                pass

            def end_batch(self):
                pass

        sink = Sink()
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            Link.transmit_many(simulator, entries, sink)
        # per-datagram transmit: one event per datagram instead of one wave,
        # and the degradation is observable on the sink counter
        assert simulator.events_scheduled - before == 3
        assert sum(link.statistics.datagrams_sent for link in links) == 3
        assert sink.link_batch_fallback_waves == 1

    def test_fallback_warns_once_per_process(self):
        import repro.netsim.link as link_module

        simulator = Simulator()
        delivered: list[tuple[int, Datagram]] = []
        links = self._links(simulator, 2, LinkConfig(delay=0.01), delivered)
        links[0].batchable = False
        original = link_module._fallback_warning_issued
        link_module._fallback_warning_issued = False
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                entries = [(link, Datagram(SRC, DST, b"x")) for link in links]
                Link.transmit_many(simulator, entries, None)
                entries = [(link, Datagram(SRC, DST, b"y")) for link in links]
                Link.transmit_many(simulator, entries, None)
            fallback_warnings = [
                w for w in caught if issubclass(w.category, RuntimeWarning)
            ]
            assert len(fallback_warnings) == 1
            assert "per-datagram" in str(fallback_warnings[0].message)
        finally:
            link_module._fallback_warning_issued = original

    def test_matches_sequential_transmit_behaviour(self):
        results = []
        for batched in (False, True):
            simulator = Simulator(seed=5)
            delivered = []
            links = self._links(simulator, 6, LinkConfig(delay=0.02), delivered)
            entries = [
                (link, Datagram(SRC, DST, bytes([index])))
                for index, link in enumerate(links)
            ]
            if batched:
                Link.transmit_many(simulator, entries)
            else:
                for link, datagram in entries:
                    link.transmit(datagram)
            simulator.run_until_idle()
            results.append(
                [(index, bytes(datagram.payload), simulator.now) for index, datagram in delivered]
            )
        assert results[0] == results[1]


class TestNetworkBatching:
    def _network(self):
        simulator = Simulator()
        network = Network(simulator, trace=NullTraceRecorder(simulator))
        network.add_host("a")
        network.add_host("b")
        network.add_host("c")
        network.connect("a", "b", LinkConfig(delay=0.01))
        network.connect("a", "c", LinkConfig(delay=0.01))
        return simulator, network

    def test_batch_region_collects_and_flushes_once(self):
        simulator, network = self._network()
        before = simulator.events_scheduled
        network.begin_batch()
        network.route(Datagram(Address("a", 1), Address("b", 1), b"one"))
        network.route(Datagram(Address("a", 1), Address("c", 1), b"two"))
        assert simulator.events_scheduled == before  # nothing scheduled yet
        network.end_batch()
        assert simulator.events_scheduled == before + 1
        simulator.run_until_idle()
        assert network.link("a", "b").statistics.datagrams_delivered == 1
        assert network.link("a", "c").statistics.datagrams_delivered == 1

    def test_nested_regions_flush_at_outermost_exit(self):
        simulator, network = self._network()
        network.begin_batch()
        network.begin_batch()
        network.route(Datagram(Address("a", 1), Address("b", 1), b"x"))
        network.end_batch()
        assert simulator.events_scheduled == 0
        network.end_batch()
        assert simulator.events_scheduled == 1

    def test_batching_disabled_transmits_immediately(self):
        simulator, network = self._network()
        network.batching_enabled = False
        network.begin_batch()
        network.route(Datagram(Address("a", 1), Address("b", 1), b"x"))
        assert simulator.events_scheduled == 1  # scheduled at enqueue
        network.end_batch()
        simulator.run_until_idle()
        assert network.link("a", "b").statistics.datagrams_delivered == 1


# ---------------------------------------------------------------------------
# netsim: the datagram pool
# ---------------------------------------------------------------------------
class TestDatagramPool:
    def test_shell_is_reused_after_release(self):
        pool = DatagramPool()
        first = pool.acquire(SRC, DST, b"one", "quic")
        first.release()
        second = pool.acquire(DST, SRC, b"two", "udp")
        assert second is first  # recycled shell
        assert second.payload == b"two"
        assert second.protocol == "udp"
        assert second.metadata is None
        assert pool.datagrams_allocated == 1
        assert pool.datagrams_reused == 1

    def test_retain_defers_reclaim_until_last_release(self):
        pool = DatagramPool()
        datagram = pool.acquire(SRC, DST, b"payload", "quic")
        datagram.retain()
        datagram.release()  # network's in-flight reference
        assert datagram.payload == b"payload"  # consumer still holds it
        datagram.release()
        replacement = pool.acquire(SRC, DST, b"next", "quic")
        assert replacement is datagram

    def test_plain_datagrams_ignore_refcounting(self):
        datagram = Datagram(SRC, DST, b"plain")
        datagram.retain()
        datagram.release()
        datagram.release()  # must be harmless
        assert datagram.payload == b"plain"

    def test_buffer_roundtrip_is_recycled(self):
        pool = DatagramPool()
        buffer = pool.acquire_buffer()
        buffer += b"wire-bytes"
        datagram = pool.acquire(SRC, DST, memoryview(buffer), "quic", buffer=buffer)
        datagram.release()
        again = pool.acquire_buffer()
        assert again is buffer
        assert len(again) == 0  # cleared for the next writer
        assert pool.buffers_reused == 1

    def test_buffer_with_live_export_is_abandoned_not_reused(self):
        pool = DatagramPool()
        buffer = pool.acquire_buffer()
        buffer += b"retained"
        datagram = pool.acquire(SRC, DST, memoryview(buffer), "quic", buffer=buffer)
        leaked_view = datagram.payload[0:]  # consumer keeps a sub-view, no retain()
        datagram.release()
        fresh = pool.acquire_buffer()
        assert fresh is not buffer  # abandoned, never recycled
        fresh += b"\xff" * 8
        assert bytes(leaked_view) == b"retained"  # old bytes stay observable
        assert pool.buffers_abandoned >= 1

    @given(st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=10))
    @settings(max_examples=100)
    def test_reuse_never_aliases_live_payloads(self, payloads):
        """Mutate-after-release must not be observable downstream.

        Consumers either copy (the decode paths), retain the datagram, or —
        worst case — keep a raw sub-view without retaining; in every case the
        bytes they saw must never change under later pool writes.
        """
        pool = DatagramPool()
        observed: list[tuple[bytes, memoryview]] = []
        for index, payload in enumerate(payloads):
            buffer = pool.acquire_buffer()
            buffer += payload
            datagram = pool.acquire(SRC, DST, memoryview(buffer), "quic", buffer=buffer)
            if index % 2 == 0:
                observed.append((bytes(payload), datagram.payload[0:]))
            datagram.release()
            # Next writer mutates whatever buffer the pool hands out.
            scribble = pool.acquire_buffer()
            scribble += b"\xee" * (len(payload) + 3)
            scribbled = pool.acquire(SRC, DST, memoryview(scribble), "quic", buffer=scribble)
            scribbled.release()
        for expected, view in observed:
            assert bytes(view) == expected


# ---------------------------------------------------------------------------
# QUIC: preassembled one-shot streams
# ---------------------------------------------------------------------------
class TestSendEncodedStream:
    def _chunk(self, alias=1):
        obj = MoqtObject(group_id=4, object_id=2, payload=b"fan-out-payload")
        return encode_subgroup_stream_chunk(alias, obj, encode_subgroup_object(obj))

    def test_wire_identical_to_general_stream_path(self):
        chunk = self._chunk()
        slow_sent, fast_sent = [], []
        _, slow = _make_connection(slow_sent)
        _, fast = _make_connection(fast_sent)
        stream = slow.open_stream(StreamDirection.UNIDIRECTIONAL)
        slow.send_stream_data(stream, chunk, fin=True)
        stream_id = fast.send_encoded_stream(chunk)
        assert fast_sent == slow_sent
        assert stream_id == stream.stream_id
        assert fast.statistics.packets_sent == slow.statistics.packets_sent
        assert fast.statistics.bytes_sent == slow.statistics.bytes_sent

    def test_stream_id_sequence_is_shared_with_open_stream(self):
        sent = []
        _, connection = _make_connection(sent)
        first = connection.send_encoded_stream(self._chunk())
        second = connection.open_stream(StreamDirection.UNIDIRECTIONAL).stream_id
        third = connection.send_encoded_stream(self._chunk())
        assert (first, second, third) == (2, 6, 10)  # client uni: 2, 6, 10

    def test_unacked_packet_is_retransmitted_with_identical_frames(self):
        chunk = self._chunk()
        sent = []
        simulator, connection = _make_connection(sent)
        connection.send_encoded_stream(chunk)
        first = Packet.decode(sent[0])
        simulator.run(until=connection.probe_timeout + 0.001)
        assert connection.statistics.retransmissions == 1
        retransmitted = Packet.decode(sent[1])
        assert retransmitted.packet_number > first.packet_number
        assert retransmitted.frames == first.frames
        assert retransmitted.packet_type is PacketType.ONE_RTT

    def test_falls_back_to_general_path_before_handshake(self):
        sent = []
        _, connection = _make_connection(sent, handshake_complete=False)
        connection.used_0rtt = True
        connection.early_data_accepted = True
        connection.send_encoded_stream(self._chunk())
        packet = Packet.decode(sent[-1])
        assert packet.packet_type is PacketType.ZERO_RTT


class TestOneShotReceivePath:
    def test_complete_uni_stream_needs_no_stream_state(self):
        sent = []
        received = []
        _, sender = _make_connection(sent)
        _, receiver = _make_connection([], is_client=False)
        receiver.handshake_complete = True
        receiver.on_stream_data = lambda sid, data, fin: received.append((sid, bytes(data), fin))
        sender.send_encoded_stream(b"stream-payload")
        packet = Packet.decode(sent[0])
        receiver.packet_received(packet, len(sent[0]))
        assert received == [(2, b"stream-payload", True)]
        assert 2 not in receiver.streams()  # no QuicStream materialised

    def test_retransmitted_duplicate_is_suppressed(self):
        sent = []
        received = []
        simulator, sender = _make_connection(sent)
        _, receiver = _make_connection([], is_client=False)
        receiver.handshake_complete = True
        receiver.on_stream_data = lambda sid, data, fin: received.append(bytes(data))
        sender.send_encoded_stream(b"once-only")
        simulator.run(until=sender.probe_timeout + 0.001)  # force a retransmit
        assert len(sent) == 2
        for payload in sent:
            receiver.packet_received(Packet.decode(payload), len(payload))
        assert received == [b"once-only"]


# ---------------------------------------------------------------------------
# MoQT: fan-out fast path and shared decode memos
# ---------------------------------------------------------------------------
class TestPublishPreencodedWireIdentity:
    def _session_pair(self):
        """A publisher-side session whose connection records what it sends."""
        from repro.moqt.session import MoqtSession, PublisherSubscription

        sent = []
        _, connection = _make_connection(sent, is_client=False)
        session = MoqtSession(connection, is_client=False)
        subscription = PublisherSubscription(request_id=1, track_alias=7, full_track_name=TRACK)
        return session, subscription, sent

    def test_matches_publish_byte_for_byte(self):
        obj = MoqtObject(group_id=3, object_id=1, payload=b"record-update")
        body = encode_subgroup_object(obj)
        chunk = encode_subgroup_stream_chunk(7, obj, body)

        slow_session, slow_subscription, slow_sent = self._session_pair()
        slow_session.publish(slow_subscription, obj, body)
        fast_session, fast_subscription, fast_sent = self._session_pair()
        fast_session.publish_preencoded(fast_subscription, obj, chunk)

        assert fast_sent == slow_sent
        assert (
            fast_session.statistics.objects_sent == slow_session.statistics.objects_sent == 1
        )
        assert fast_subscription.objects_sent == slow_subscription.objects_sent == 1

    def test_respects_forward_flag(self):
        obj = MoqtObject(group_id=3, object_id=1, payload=b"x")
        chunk = encode_subgroup_stream_chunk(7, obj, encode_subgroup_object(obj))
        session, subscription, sent = self._session_pair()
        subscription.forward = False
        session.publish_preencoded(subscription, obj, chunk)
        assert sent == []
        assert session.statistics.objects_sent == 0


class TestDecodeMemos:
    def test_complete_datastream_matches_parser(self):
        obj = MoqtObject(group_id=9, object_id=4, payload=b"memo-me", extensions=b"ee")
        chunk = encode_subgroup_stream_chunk(3, obj, encode_subgroup_object(obj))
        header, objects = decode_complete_datastream(chunk)
        parser = DataStreamParser()
        parsed = parser.feed(chunk, fin=True)
        assert header == parser.header
        assert list(objects) == parsed

    def test_identical_bytes_share_one_decode(self):
        obj = MoqtObject(group_id=9, object_id=5, payload=b"shared")
        chunk = encode_subgroup_stream_chunk(3, obj, encode_subgroup_object(obj))
        first = decode_complete_datastream(chunk)
        second = decode_complete_datastream(bytes(chunk))
        assert second[1][0] is first[1][0]  # same immutable object instance

    def test_truncated_stream_yields_no_header(self):
        header, objects = decode_complete_datastream(b"")
        assert header is None and objects == ()

    def test_control_message_memo_shares_instances(self):
        from repro.moqt.messages import Subscribe, decode_control_message

        message = Subscribe(request_id=0, track_alias=1, full_track_name=TRACK)
        wire = message.encode()
        first, _ = decode_control_message(wire)
        second, _ = decode_control_message(bytes(wire))
        assert first == message
        assert second is first


# ---------------------------------------------------------------------------
# determinism canary: batched vs unbatched delivery
# ---------------------------------------------------------------------------
def _run_canary_tree(batching: bool):
    simulator = Simulator(seed=11)
    network = Network(simulator, trace=NullTraceRecorder(simulator))
    network.batching_enabled = batching
    publisher = build_origin(network)
    tree = RelayTreeBuilder(network, Address(ORIGIN_HOST, ORIGIN_PORT)).build(
        RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
    )
    tree.attach_subscribers(25)
    sequences: dict[int, list[tuple[int, int]]] = {index: [] for index in range(25)}
    tree.subscribe_all(
        TRACK,
        on_object=lambda subscriber, obj: sequences[subscriber.index].append(
            (obj.group_id, obj.object_id)
        ),
    )
    simulator.run(until=simulator.now + 3.0)
    for update in range(4):
        publisher.push(
            MoqtObject(group_id=update + 2, object_id=0, payload=b"canary" * 20)
        )
        simulator.run(until=simulator.now + 0.25)
    simulator.run(until=simulator.now + 3.0)
    return sequences, network.total_link_statistics(), simulator.now


class TestBatchedDeliveryDeterminismCanary:
    def test_batched_and_unbatched_runs_are_byte_identical(self):
        batched_sequences, batched_stats, batched_now = _run_canary_tree(True)
        plain_sequences, plain_stats, plain_now = _run_canary_tree(False)
        assert batched_sequences == plain_sequences
        assert any(batched_sequences.values()), "sequences were recorded"
        assert batched_stats == plain_stats  # same bytes on every link
        assert batched_now == plain_now

    def test_batching_collapses_the_event_count(self):
        batched = _run_canary_events(True)
        unbatched = _run_canary_events(False)
        # Even at 25 subscribers the batch form halves the event count; the
        # collapse grows with fan-out (10x at 10k subscribers).
        assert batched * 2 < unbatched


def _run_canary_events(batching: bool) -> int:
    simulator = Simulator(seed=11)
    network = Network(simulator, trace=NullTraceRecorder(simulator))
    network.batching_enabled = batching
    publisher = build_origin(network)
    tree = RelayTreeBuilder(network, Address(ORIGIN_HOST, ORIGIN_PORT)).build(
        RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
    )
    tree.attach_subscribers(25)
    tree.subscribe_all(TRACK)
    simulator.run(until=simulator.now + 3.0)
    for update in range(4):
        publisher.push(MoqtObject(group_id=update + 2, object_id=0, payload=b"x" * 100))
        simulator.run(until=simulator.now + 0.25)
    simulator.run(until=simulator.now + 3.0)
    return simulator.events_scheduled


# ---------------------------------------------------------------------------
# simulator counters and harness plumbing
# ---------------------------------------------------------------------------
class TestSimulatorCounters:
    def test_events_scheduled_counts_every_call_at(self):
        simulator = Simulator()
        assert simulator.events_scheduled == 0
        simulator.call_later(0.1, lambda: None)
        simulator.call_soon(lambda: None)
        assert simulator.events_scheduled == 2
        simulator.run_until_idle()
        assert simulator.events_scheduled == 2  # running does not schedule

    def test_compactions_counter_tracks_heap_rebuilds(self):
        simulator = Simulator()
        events = [simulator.call_later(1.0, lambda: None) for _ in range(200)]
        assert simulator.compactions == 0
        for event in events[:150]:
            event.cancel()
        assert simulator.compactions >= 1


class TestPerfHarness:
    def _import_harness(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks" / "perf"))
        import perf_fastpath

        return perf_fastpath

    def test_repeated_reports_min_and_median(self):
        harness = self._import_harness()
        calls = iter([0.5, 0.3, 0.4])

        def fake_bench(**kwargs):
            return {"seconds": next(calls), "ops_per_second": 1}

        result = harness.repeated(fake_bench, 3)
        assert result["repeat"] == 3
        assert result["seconds"] == 0.3  # headline comes from the fastest run
        assert result["seconds_min"] == 0.3
        assert result["seconds_median"] == 0.4
        assert result["seconds_all"] == [0.5, 0.3, 0.4]

    def test_repeated_single_run_keeps_plain_shape(self):
        harness = self._import_harness()
        result = harness.repeated(lambda **kwargs: {"seconds": 1.0}, 1)
        assert result == {"seconds": 1.0}

    def test_event_loop_churn_reports_compactions(self):
        harness = self._import_harness()
        result = harness.bench_event_loop_churn(events=2_000)
        assert result["compactions"] >= 1
        assert result["timer_fired"] == 1

    def test_check_against_reference_gates_on_throughput(self, tmp_path):
        harness = self._import_harness()
        reference = {
            "benchmarks": {
                "event_loop_churn": {"events_per_second": 1000},
                "varint_roundtrip": {"ops_per_second": 1000},
            }
        }
        path = tmp_path / "ref.json"
        path.write_text(json.dumps(reference))
        good = {
            "benchmarks": {
                "event_loop_churn": {"events_per_second": 900},
                "varint_roundtrip": {"ops_per_second": 700},
            }
        }
        assert harness.check_against_reference(good, path) == []
        bad = {
            "benchmarks": {
                "event_loop_churn": {"events_per_second": 640},  # > 35% down
                "varint_roundtrip": {"ops_per_second": 700},
            }
        }
        failures = harness.check_against_reference(bad, path)
        assert len(failures) == 1
        assert "event_loop_churn" in failures[0]

    def test_check_skips_benchmarks_missing_from_either_side(self, tmp_path):
        harness = self._import_harness()
        path = tmp_path / "ref.json"
        path.write_text(json.dumps({"benchmarks": {}}))
        document = {"benchmarks": {"event_loop_churn": {"events_per_second": 1}}}
        assert harness.check_against_reference(document, path) == []
