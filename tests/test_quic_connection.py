"""Tests for the QUIC connection state machine over the simulated network."""

from __future__ import annotations

import pytest

from repro.netsim.link import LinkConfig
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.quic.connection import ConnectionConfig
from repro.quic.endpoint import QuicEndpoint
from repro.quic.stream import StreamDirection
from repro.quic.tls import ServerTlsContext

SERVER = "9.9.9.9"
CLIENT = "10.0.0.1"
RTT = 0.1


def _build(loss_rate: float = 0.0, server_accept_early: bool = True, keepalive=None, idle=30.0):
    simulator = Simulator(seed=11)
    network = Network(simulator)
    network.add_host(SERVER)
    network.add_host(CLIENT)
    network.connect(SERVER, CLIENT, LinkConfig(delay=RTT / 2, loss_rate=loss_rate))

    server_connections = []

    def echo_handler(connection):
        def on_data(stream_id, data, fin):
            stream = connection.get_or_create_stream(stream_id)
            connection.send_stream_data(stream, b"echo:" + data, fin=True)

        connection.on_stream_data = on_data
        server_connections.append(connection)

    server_endpoint = QuicEndpoint(
        network.host(SERVER),
        port=4443,
        server_tls=ServerTlsContext(alpn_protocols=("moq-00",), accept_early_data=server_accept_early),
        on_connection=echo_handler,
    )
    client_endpoint = QuicEndpoint(network.host(CLIENT))
    config = ConnectionConfig(
        alpn_protocols=("moq-00",), keepalive_interval=keepalive, idle_timeout=idle
    )
    return simulator, server_endpoint, client_endpoint, config, server_connections


class TestHandshake:
    def test_handshake_takes_one_rtt(self):
        simulator, server_ep, client_ep, config, _ = _build()
        connection = client_ep.connect(Address(SERVER, 4443), config)
        times = []
        connection.on_handshake_complete = lambda c: times.append(simulator.now)
        simulator.run(until=5.0)
        assert times == [pytest.approx(RTT)]
        assert connection.negotiated_alpn == "moq-00"
        assert connection.handshake_rtts == 1.0

    def test_request_response_over_fresh_connection_takes_two_rtts(self):
        simulator, server_ep, client_ep, config, _ = _build()
        connection = client_ep.connect(Address(SERVER, 4443), config)
        replies = []

        def after_handshake(c):
            stream = c.open_stream()
            c.send_stream_data(stream, b"ping", fin=True)

        connection.on_handshake_complete = after_handshake
        connection.on_stream_data = lambda sid, data, fin: replies.append((simulator.now, data))
        simulator.run(until=5.0)
        assert replies[0][0] == pytest.approx(2 * RTT)
        assert replies[0][1] == b"echo:ping"

    def test_alpn_mismatch_closes_connection(self):
        simulator, server_ep, client_ep, _, _ = _build()
        connection = client_ep.connect(
            Address(SERVER, 4443), ConnectionConfig(alpn_protocols=("h3-only",))
        )
        simulator.run(until=5.0)
        assert not connection.handshake_complete

    def test_server_connection_created_per_client(self):
        simulator, server_ep, client_ep, config, server_connections = _build()
        client_ep.connect(Address(SERVER, 4443), config)
        client_ep.connect(Address(SERVER, 4443), config)
        simulator.run(until=5.0)
        assert len(server_connections) == 2
        assert len(server_ep.open_connections()) == 2


class TestZeroRtt:
    def test_resumed_connection_sends_early_data(self):
        simulator, server_ep, client_ep, config, _ = _build()
        first = client_ep.connect(Address(SERVER, 4443), config)
        simulator.run(until=1.0)
        assert client_ep.ticket_store.get(SERVER, simulator.now) is not None

        second = client_ep.connect(Address(SERVER, 4443), config)
        replies = []
        second.on_stream_data = lambda sid, data, fin: replies.append(simulator.now)
        stream = second.open_stream()
        start = simulator.now
        second.send_stream_data(stream, b"early", fin=True)
        simulator.run(until=start + 5.0)
        assert second.used_0rtt and second.early_data_accepted
        assert second.handshake_rtts == 0.0
        assert replies[0] - start == pytest.approx(RTT)

    def test_server_rejecting_early_data_still_delivers_after_handshake(self):
        simulator, server_ep, client_ep, config, _ = _build(server_accept_early=False)
        first = client_ep.connect(Address(SERVER, 4443), config)
        simulator.run(until=1.0)
        second = client_ep.connect(Address(SERVER, 4443), config)
        replies = []
        second.on_stream_data = lambda sid, data, fin: replies.append((simulator.now, data))
        start = simulator.now
        stream = second.open_stream()
        second.send_stream_data(stream, b"early", fin=True)
        simulator.run(until=start + 5.0)
        assert second.used_0rtt and not second.early_data_accepted
        assert replies and replies[0][1] == b"echo:early"
        assert replies[0][0] - start >= 2 * RTT - 1e-9

    def test_0rtt_disabled_by_config(self):
        simulator, server_ep, client_ep, _, _ = _build()
        config = ConnectionConfig(alpn_protocols=("moq-00",), enable_0rtt=False)
        client_ep.connect(Address(SERVER, 4443), config)
        simulator.run(until=1.0)
        second = client_ep.connect(Address(SERVER, 4443), config)
        assert not second.used_0rtt


class TestReliabilityAndLifecycle:
    def test_streams_survive_packet_loss(self):
        simulator, server_ep, client_ep, config, _ = _build(loss_rate=0.25)
        connection = client_ep.connect(Address(SERVER, 4443), config)
        replies = []

        def after_handshake(c):
            stream = c.open_stream()
            c.send_stream_data(stream, b"lossy", fin=True)

        connection.on_handshake_complete = after_handshake
        connection.on_stream_data = lambda sid, data, fin: replies.append(data)
        simulator.run(until=60.0)
        assert replies and replies[0] == b"echo:lossy"
        assert connection.statistics.retransmissions >= 0

    def test_datagrams_are_delivered_unreliably_but_work_without_loss(self):
        simulator, server_ep, client_ep, config, server_connections = _build()
        connection = client_ep.connect(Address(SERVER, 4443), config)
        received = []
        connection.on_handshake_complete = lambda c: c.send_datagram_frame(b"unreliable")
        simulator.run(until=1.0)
        server_connections[0].on_datagram = received.append
        connection.send_datagram_frame(b"second")
        simulator.run(until=2.0)
        assert received == [b"second"]
        assert connection.statistics.datagrams_sent == 2

    def test_idle_timeout_closes_connection(self):
        simulator, server_ep, client_ep, _, _ = _build(idle=1.0)
        config = ConnectionConfig(alpn_protocols=("moq-00",), idle_timeout=1.0)
        connection = client_ep.connect(Address(SERVER, 4443), config)
        closed = []
        connection.on_closed = lambda code, reason: closed.append(reason)
        simulator.run(until=10.0)
        assert connection.closed
        assert closed and "idle" in closed[0]

    def test_keepalive_prevents_idle_timeout(self):
        simulator, server_ep, client_ep, _, _ = _build()
        config = ConnectionConfig(
            alpn_protocols=("moq-00",), idle_timeout=1.0, keepalive_interval=0.4
        )
        connection = client_ep.connect(Address(SERVER, 4443), config)
        simulator.run(until=5.0)
        assert not connection.closed
        assert connection.statistics.pings_sent >= 10

    def test_explicit_close_notifies_peer(self):
        simulator, server_ep, client_ep, config, server_connections = _build()
        connection = client_ep.connect(Address(SERVER, 4443), config)
        simulator.run(until=1.0)
        connection.close(reason="done")
        simulator.run(until=2.0)
        assert connection.closed
        assert server_connections[0].closed

    def test_unreachable_server_gives_up_after_bounded_retries(self):
        simulator = Simulator(seed=2)
        network = Network(simulator)
        network.add_host(CLIENT)
        network.add_host(SERVER)  # no QUIC endpoint bound on the server
        network.connect(CLIENT, SERVER, LinkConfig(delay=0.01))
        endpoint = QuicEndpoint(network.host(CLIENT))
        connection = endpoint.connect(Address(SERVER, 4443), ConnectionConfig(initial_rtt=0.02))
        simulator.run(until=120.0)
        assert connection.closed
        assert simulator.pending_events == 0


class TestTimerEdgeCases:
    """Battery for the lazy-restart idle timer and the PTO backoff."""

    def test_idle_timer_fires_exactly_at_the_extended_deadline(self):
        # Traffic extends the idle deadline through the inlined lazy-restart
        # fast path (a float assignment, no heap traffic); the close must
        # happen exactly idle_timeout after the *last* activity, not at the
        # originally armed wake-up.
        simulator, server_ep, client_ep, _, _ = _build(idle=1.0)
        config = ConnectionConfig(alpn_protocols=("moq-00",), idle_timeout=1.0)
        connection = client_ep.connect(Address(SERVER, 4443), config)
        closed_at = []
        connection.on_closed = lambda code, reason: closed_at.append(simulator.now)
        simulator.run(until=0.8)
        stream = connection.open_stream()
        connection.send_stream_data(stream, b"extend", fin=True)  # deadline moves
        last_activity = simulator.now + RTT  # the echo reply restarts it again
        simulator.run(until=10.0)
        assert connection.closed
        assert closed_at == [pytest.approx(last_activity + 1.0)]
        assert connection.liveness == "dead"
        assert connection.liveness_cause == "idle-timeout"

    def test_pto_backoff_doubles_between_consecutive_timeouts(self):
        # No server endpoint: every INITIAL goes unanswered, so consecutive
        # PTOs walk the full backoff sequence.  Intervals must double per
        # timeout, capped at 2**PTO_BACKOFF_EXPONENT_CAP probe intervals.
        from repro.quic.connection import QuicConnection

        simulator = Simulator(seed=3)
        network = Network(simulator)
        network.add_host(CLIENT)
        network.add_host(SERVER)
        network.connect(CLIENT, SERVER, LinkConfig(delay=0.01))
        endpoint = QuicEndpoint(network.host(CLIENT))
        connection = endpoint.connect(Address(SERVER, 4443), ConnectionConfig(initial_rtt=0.04))
        send_times = []
        original = connection._send
        connection._send = lambda payload, destination: (
            send_times.append(simulator.now),
            original(payload, destination),
        )
        simulator.run(until=120.0)
        assert connection.closed and connection.close_reason == "peer unreachable"
        pto = max(2.5 * 0.04, 0.02)
        # send_times holds the retransmissions only (the original INITIAL
        # left before the capture hook was installed); the n-th and n+1-th
        # retransmits are 2**n probe intervals apart, capped.
        assert send_times[0] == pytest.approx(pto)
        intervals = [b - a for a, b in zip(send_times, send_times[1:])]
        cap = 2 ** QuicConnection.PTO_BACKOFF_EXPONENT_CAP
        expected = [
            pto * min(2**n, cap)
            for n in range(1, QuicConnection.MAX_CONSECUTIVE_LOSS_TIMEOUTS)
        ]
        assert intervals == pytest.approx(expected)
        assert connection.liveness == "dead"
        assert connection.liveness_cause == "pto-give-up"


def _isolated_connection(simulator, sent):
    """A client connection whose outgoing packets are captured, not routed."""
    from repro.netsim.packet import Address as Addr
    from repro.quic.connection import ConnectionConfig as Config, QuicConnection

    return QuicConnection(
        simulator=simulator,
        send_datagram=lambda payload, destination: sent.append(payload),
        local_address=Addr("client", 1),
        peer_address=Addr("server", 2),
        connection_id=77,
        is_client=True,
        config=Config(initial_rtt=0.04),
    )


def _ack_everything(connection):
    """Deliver an ACK covering every packet the connection ever sent."""
    from repro.quic.frames import AckFrame
    from repro.quic.packet import Packet, PacketType

    connection.packet_received(
        Packet(
            packet_type=PacketType.INITIAL,
            connection_id=connection.connection_id,
            packet_number=0,
            frames=(AckFrame(largest=connection._next_packet_number - 1),),
        ),
        wire_size=10,
    )


class TestLivenessStateMachine:
    """healthy -> suspect -> (recovered | dead), observer callbacks."""

    def _run_ptos(self, simulator, connection, count):
        """Let exactly ``count`` consecutive loss timeouts fire."""
        for _ in range(count):
            deadline = connection._loss_timer.deadline
            assert deadline is not None
            simulator.run(until=deadline)

    def test_ack_after_n_minus_1_ptos_keeps_the_connection_healthy(self):
        simulator = Simulator()
        sent = []
        connection = _isolated_connection(simulator, sent)
        transitions = []
        connection.on_liveness = lambda c, old, new: transitions.append((old, new))
        connection.start_handshake()
        self._run_ptos(
            simulator, connection, connection.LIVENESS_SUSPECT_AFTER - 1
        )
        assert connection.liveness == "healthy"
        assert connection._consecutive_loss_timeouts == connection.LIVENESS_SUSPECT_AFTER - 1
        _ack_everything(connection)
        assert connection._consecutive_loss_timeouts == 0
        assert connection.liveness == "healthy"
        assert transitions == [], "no transition ever happened"

    def test_suspect_after_n_consecutive_ptos_then_recovered_by_ack(self):
        simulator = Simulator()
        sent = []
        connection = _isolated_connection(simulator, sent)
        transitions = []
        connection.on_liveness = lambda c, old, new: transitions.append(
            (old, new, c.liveness_cause)
        )
        connection.start_handshake()
        self._run_ptos(simulator, connection, connection.LIVENESS_SUSPECT_AFTER)
        assert connection.liveness == "suspect"
        assert connection.suspected_at == simulator.now
        assert transitions == [("healthy", "suspect", "pto-suspect")]
        _ack_everything(connection)
        assert connection.liveness == "healthy"
        assert transitions[-1] == ("suspect", "healthy", "recovered")
        assert not connection.closed, "suspicion alone never closes"

    def test_suspect_fires_at_the_modelled_offset(self):
        # With doubling backoff the suspect transition lands exactly
        # pto * (2**N - 1) after the unacknowledged send.
        from repro.analysis.detection import suspect_latency

        simulator = Simulator()
        sent = []
        connection = _isolated_connection(simulator, sent)
        suspected = []
        connection.on_liveness = lambda c, old, new: suspected.append(simulator.now)
        connection.start_handshake()  # unacknowledged send at t=0
        pto = connection.probe_timeout
        self._run_ptos(simulator, connection, connection.LIVENESS_SUSPECT_AFTER)
        assert suspected == [pytest.approx(suspect_latency(pto))]

    def test_announced_close_sets_dead_without_observer_callback(self):
        simulator = Simulator()
        sent = []
        connection = _isolated_connection(simulator, sent)
        transitions = []
        connection.on_liveness = lambda c, old, new: transitions.append((old, new))
        connection.close(reason="done")
        assert connection.liveness == "dead"
        assert transitions == [], "announced closes are not detections"

    def test_abandon_is_silent_and_stops_all_timers(self):
        simulator = Simulator()
        sent = []
        connection = _isolated_connection(simulator, sent)
        closed = []
        connection.on_closed = lambda code, reason: closed.append(reason)
        connection.start_handshake()
        wire_before = len(sent)
        connection.abandon()
        simulator.run_until_idle()
        assert connection.closed and connection.close_reason == "abandoned"
        assert len(sent) == wire_before, "no close frame escapes a crash"
        assert closed == [], "no callback observes the crash"
        assert simulator.pending_events == 0, "all timers died with the process"


class TestConnectionIdAllocation:
    def test_ids_stay_within_varint_range_at_high_connection_counts(self):
        simulator = Simulator(seed=9)
        network = Network(simulator)
        network.add_host(CLIENT)
        endpoint = QuicEndpoint(network.host(CLIENT))
        # Even after 16384+ allocations the composite (counter | random) must
        # stay encodable as a QUIC varint (< 2**62).
        endpoint._next_connection_id = 20_000
        for _ in range(3):
            assert endpoint._allocate_connection_id() < (1 << 62)

    def test_ids_are_collision_resistant_across_many_client_endpoints(self):
        # Many independent client endpoints talk to one server: the server
        # demultiplexes purely by connection ID, so IDs chosen by unrelated
        # endpoints must not collide at relay-scale fan-in (~hundreds).
        simulator = Simulator(seed=9)
        network = Network(simulator)
        seen = set()
        for index in range(500):
            host = network.add_host(f"client-{index}")
            endpoint = QuicEndpoint(host)
            connection_id = endpoint._allocate_connection_id()
            assert connection_id not in seen
            seen.add(connection_id)


class TestAckRangesRepair:
    """The gap-aware received-set and exact-ACK repair path.

    Cumulative ACKs are only sound while the receiver's set is gap-free
    from packet 0; once a drop is observed (a later packet arrived), an
    ``AckFrame(largest)`` would falsely acknowledge the dropped number and
    cancel its retransmission — a double drop then becomes a permanent
    delivery hole.  These tests pin the run-merging of ``_record_received``
    and the exact-ACK processing that closes that hole.
    """

    def _connection(self):
        simulator, _server_ep, client_ep, config, _ = _build()
        connection = client_ep.connect(Address(SERVER, 4443), config)
        simulator.run(until=5.0)
        assert connection.handshake_complete
        return simulator, connection

    def test_in_order_receive_stays_one_run(self):
        _, connection = self._connection()
        connection._received_ranges = []
        for packet_number in range(5):
            connection._record_received(packet_number)
        assert connection._received_ranges == [[0, 4]]

    def test_gap_opens_a_second_run_and_fill_merges_it(self):
        _, connection = self._connection()
        connection._received_ranges = []
        for packet_number in (0, 1, 3):
            connection._record_received(packet_number)
        assert connection._received_ranges == [[0, 1], [3, 3]]
        connection._record_received(2)  # the retransmission lands
        assert connection._received_ranges == [[0, 3]]
        connection._record_received(2)  # duplicate: no change
        assert connection._received_ranges == [[0, 3]]

    def test_retransmission_below_the_top_run_merges_both_sides(self):
        _, connection = self._connection()
        connection._received_ranges = []
        for packet_number in (0, 1, 2, 3, 10):
            connection._record_received(packet_number)
        connection._record_received(5)
        assert connection._received_ranges == [[0, 3], [5, 5], [10, 10]]
        connection._record_received(4)
        assert connection._received_ranges == [[0, 5], [10, 10]]

    def test_horizon_prune_merges_the_oldest_runs(self):
        _, connection = self._connection()
        connection._received_ranges = []
        connection._record_received(0)
        far = connection.RECEIVED_RANGES_HORIZON + 1000
        connection._record_received(far)
        # The stale bottom run is folded in: the sender re-numbers on PTO,
        # so packet numbers that far behind can no longer be retransmitted.
        assert connection._received_ranges == [[0, far]]

    def test_exact_ack_leaves_the_dropped_packet_unacked(self):
        from repro.quic.frames import AckRangesFrame

        _, connection = self._connection()
        connection._unacked = {0: object(), 1: object(), 2: object(), 3: object()}
        connection._sent_times = {}
        connection._process_ack_ranges(
            AckRangesFrame(largest=3, delay_us=0, ranges=((0, 1), (3, 3)))
        )
        # Packet 2 was never received by the peer: it must stay unacked so
        # the loss timer retransmits it.
        assert set(connection._unacked) == {2}

    def test_exact_vs_cumulative_ack_on_a_gapped_set(self):
        from repro.quic.frames import AckFrame, AckRangesFrame

        _, connection = self._connection()
        connection._unacked = {2: object(), 4: object()}
        connection._sent_times = {}
        connection._process_ack_ranges(
            AckRangesFrame(largest=4, delay_us=0, ranges=((0, 1), (4, 4)))
        )
        assert set(connection._unacked) == {2}
        # The cumulative form would have acked 2 as well — the exact bug.
        connection._unacked = {2: object(), 4: object()}
        connection._sent_times = {}
        connection._process_ack(AckFrame(largest=4))
        assert set(connection._unacked) == set()
