"""End-to-end tests for classic DNS: transport, authoritative server, resolvers."""

from __future__ import annotations

import pytest

from repro.dns.message import make_query
from repro.dns.name import Name
from repro.dns.resolver import RecursiveResolver, ResolutionError, StubResolver
from repro.dns.server import AuthoritativeServer
from repro.dns.transport import DnsUdpEndpoint
from repro.dns.types import Rcode, RecordType
from repro.dns.zone import Zone
from repro.netsim.link import LinkConfig
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator

ROOT, TLD, AUTH, REC, STUB = "198.41.0.4", "192.5.6.30", "93.184.216.1", "10.0.0.53", "10.0.0.2"


def _build_hierarchy(loss_rate: float = 0.0, record_ttl: int = 300):
    simulator = Simulator(seed=3)
    network = Network(simulator)
    for host in (ROOT, TLD, AUTH, REC, STUB):
        network.add_host(host)
    network.connect(STUB, REC, LinkConfig(delay=0.005, loss_rate=loss_rate))
    for upstream in (ROOT, TLD, AUTH):
        network.connect(REC, upstream, LinkConfig(delay=0.02, loss_rate=loss_rate))

    root_zone = Zone(".")
    root_zone.add("com.", "NS", "a.gtld-servers.net.", ttl=3600, bump=False)
    root_zone.add("a.gtld-servers.net.", "A", TLD, ttl=3600, bump=False)
    tld_zone = Zone("com.")
    tld_zone.add("example.com.", "NS", "ns1.example.com.", ttl=3600, bump=False)
    tld_zone.add("ns1.example.com.", "A", AUTH, ttl=3600, bump=False)
    auth_zone = Zone("example.com.")
    auth_zone.add("www.example.com.", "A", "192.0.2.10", ttl=record_ttl, bump=False)
    auth_zone.add("www.example.com.", "AAAA", "2001:db8::10", ttl=record_ttl, bump=False)

    AuthoritativeServer(network.host(ROOT), [root_zone])
    AuthoritativeServer(network.host(TLD), [tld_zone])
    auth_server = AuthoritativeServer(network.host(AUTH), [auth_zone])
    recursive = RecursiveResolver(network.host(REC), [Address(ROOT, 53)])
    stub = StubResolver(network.host(STUB), Address(REC, 53))
    return simulator, network, recursive, stub, auth_server, auth_zone


class TestUdpTransport:
    def test_query_response_roundtrip(self, simulator, two_host_network):
        network = two_host_network
        answers = []

        def handler(query, source, respond):
            from repro.dns.message import make_response

            respond(make_response(query, rcode=Rcode.NOERROR))

        DnsUdpEndpoint(network.host("10.0.0.2"), port=53, handler=handler)
        client = DnsUdpEndpoint(network.host("10.0.0.1"))
        client.query(make_query("x.example.", "A"), Address("10.0.0.2", 53), answers.append)
        simulator.run_until_idle()
        assert len(answers) == 1 and answers[0] is not None
        assert client.statistics.responses_received == 1

    def test_timeout_invokes_callback_with_none(self, simulator, two_host_network):
        network = two_host_network
        answers = []
        client = DnsUdpEndpoint(network.host("10.0.0.1"), query_timeout=0.5, retries=1)
        # Port 53 on the peer is not bound: the query is silently dropped.
        client.query(make_query("x.example.", "A"), Address("10.0.0.2", 53), answers.append)
        simulator.run_until_idle()
        assert answers == [None]
        assert client.statistics.timeouts == 1
        assert client.statistics.retransmissions == 1

    def test_unbound_handler_refuses_queries(self, simulator, two_host_network):
        network = two_host_network
        answers = []
        DnsUdpEndpoint(network.host("10.0.0.2"), port=53)  # no handler installed
        client = DnsUdpEndpoint(network.host("10.0.0.1"))
        client.query(make_query("x.example.", "A"), Address("10.0.0.2", 53), answers.append)
        simulator.run_until_idle()
        assert answers[0] is not None and answers[0].rcode == Rcode.REFUSED


class TestAuthoritativeServer:
    def test_serves_answers_and_referrals(self):
        simulator, network, recursive, stub, auth_server, _ = _build_hierarchy()
        result = auth_server.resolve_locally(Name.from_text("www.example.com."), RecordType.A)
        assert result.rcode == Rcode.NOERROR and result.answers
        refused = auth_server.resolve_locally(Name.from_text("www.other.org."), RecordType.A)
        assert refused.rcode == Rcode.REFUSED

    def test_zone_for_picks_most_specific(self):
        simulator = Simulator()
        network = Network(simulator)
        host = network.add_host("1.2.3.4")
        parent = Zone("example.com.")
        child = Zone("sub.example.com.")
        server = AuthoritativeServer(host, [parent, child])
        assert server.zone_for(Name.from_text("x.sub.example.com.")) is child
        assert server.zone_for(Name.from_text("x.example.com.")) is parent


class TestRecursiveResolution:
    def test_full_recursive_lookup(self):
        simulator, network, recursive, stub, _, _ = _build_hierarchy()
        outcomes = []
        stub.resolve("www.example.com.", "A", outcomes.append)
        simulator.run_until_idle()
        outcome = outcomes[0]
        assert outcome.rcode == Rcode.NOERROR
        assert outcome.rrset is not None
        assert outcome.rrset.sorted_rdata_texts() == ["192.0.2.10"]
        # 1 stub RTT (10 ms) + 3 upstream RTTs (40 ms each).
        assert outcome.duration == pytest.approx(0.13, abs=1e-6)
        assert recursive.statistics.upstream_queries == 3
        assert recursive.statistics.referrals_followed == 2

    def test_second_lookup_served_from_recursive_cache(self):
        simulator, network, recursive, stub, _, _ = _build_hierarchy()
        stub.resolve("www.example.com.", "A", lambda o: None)
        simulator.run_until_idle()
        upstream_before = recursive.statistics.upstream_queries
        outcomes = []
        other_stub = StubResolver(network.host(STUB), Address(REC, 53))
        other_stub.resolve("www.example.com.", "A", outcomes.append)
        simulator.run_until_idle()
        assert outcomes[0].rcode == Rcode.NOERROR
        assert recursive.statistics.upstream_queries == upstream_before
        assert outcomes[0].duration == pytest.approx(0.01, abs=1e-6)

    def test_stub_cache_hit_avoids_network(self):
        simulator, network, recursive, stub, _, _ = _build_hierarchy()
        stub.resolve("www.example.com.", "A", lambda o: None)
        simulator.run_until_idle()
        outcomes = []
        stub.resolve("www.example.com.", "A", outcomes.append)
        assert outcomes[0].from_cache is True

    def test_nxdomain_propagates(self):
        simulator, network, recursive, stub, _, _ = _build_hierarchy()
        outcomes = []
        stub.resolve("missing.example.com.", "A", outcomes.append)
        simulator.run_until_idle()
        assert outcomes[0].rcode == Rcode.NXDOMAIN

    def test_nodata_answer_is_noerror_without_records(self):
        simulator, network, recursive, stub, _, _ = _build_hierarchy()
        outcomes = []
        stub.resolve("www.example.com.", "TXT", outcomes.append)
        simulator.run_until_idle()
        assert outcomes[0].rcode == Rcode.NOERROR
        assert outcomes[0].rrset is None

    def test_aaaa_resolution(self):
        simulator, network, recursive, stub, _, _ = _build_hierarchy()
        outcomes = []
        stub.resolve("www.example.com.", "AAAA", outcomes.append)
        simulator.run_until_idle()
        assert outcomes[0].rrset.sorted_rdata_texts() == ["2001:db8::10"]

    def test_resolution_survives_moderate_loss(self):
        simulator, network, recursive, stub, _, _ = _build_hierarchy(loss_rate=0.15)
        outcomes = []
        stub.resolve("www.example.com.", "A", outcomes.append)
        simulator.run_until_idle()
        # Retries should eventually succeed despite 15% loss on every link.
        assert outcomes and outcomes[0].rcode in (Rcode.NOERROR, Rcode.SERVFAIL)

    def test_resolver_requires_root_servers(self):
        simulator = Simulator()
        network = Network(simulator)
        host = network.add_host("9.9.9.9")
        with pytest.raises(ResolutionError):
            RecursiveResolver(host, [])

    def test_cache_expiry_triggers_refetch(self):
        simulator, network, recursive, stub, _, _ = _build_hierarchy(record_ttl=30)
        stub.resolve("www.example.com.", "A", lambda o: None)
        simulator.run_until_idle()
        upstream_before = recursive.statistics.upstream_queries
        simulator.advance(31.0)
        fresh_stub = StubResolver(network.host(STUB), Address(REC, 53))
        fresh_stub.resolve("www.example.com.", "A", lambda o: None)
        simulator.run_until_idle()
        assert recursive.statistics.upstream_queries > upstream_before
