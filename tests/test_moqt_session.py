"""Tests for MoQT sessions: setup, subscribe, fetch, publish, relays."""

from __future__ import annotations

import pytest

from repro.moqt.errors import SubscribeErrorCode
from repro.moqt.messages import FilterType
from repro.moqt.objectmodel import Location, MoqtObject, TrackState
from repro.moqt.relay import MoqtRelay
from repro.moqt.session import (
    FetchResult,
    MoqtSession,
    MoqtSessionConfig,
    SubscribeResult,
)
from repro.moqt.track import FullTrackName
from repro.netsim.link import LinkConfig
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.quic.connection import ConnectionConfig
from repro.quic.endpoint import QuicEndpoint
from repro.quic.tls import ServerTlsContext

PUBLISHER = "9.9.9.9"
SUBSCRIBER = "10.0.0.1"
RELAY = "5.5.5.5"
RTT = 0.05
TRACK = FullTrackName.of(["dns", "a"], b"example")


class RecordingPublisher:
    """A publisher delegate serving one in-memory track."""

    def __init__(self, defer: bool = False) -> None:
        self.state = TrackState(TRACK)
        self.state.publish(MoqtObject(group_id=1, object_id=0, payload=b"v1"))
        self.subscribes = []
        self.fetches = []
        self.defer = defer
        self.accept = True

    def handle_subscribe(self, session, message):
        self.subscribes.append((session, message))
        if self.defer:
            return None
        if not self.accept:
            return SubscribeResult(
                ok=False, error_code=SubscribeErrorCode.TRACK_DOES_NOT_EXIST, reason="nope"
            )
        return SubscribeResult(ok=True, largest=self.state.largest)

    def handle_fetch(self, session, message, full_track_name):
        self.fetches.append((session, message, full_track_name))
        if self.defer:
            return None
        return FetchResult(ok=True, objects=self.state.latest_objects(1), largest=self.state.largest)


def _build(publisher_delegate=None, session_config=None):
    simulator = Simulator(seed=21)
    network = Network(simulator)
    network.add_host(PUBLISHER)
    network.add_host(SUBSCRIBER)
    network.connect(PUBLISHER, SUBSCRIBER, LinkConfig(delay=RTT / 2))
    publisher_sessions = []
    delegate = publisher_delegate if publisher_delegate is not None else RecordingPublisher()

    def on_connection(connection):
        publisher_sessions.append(
            MoqtSession(
                connection,
                is_client=False,
                config=session_config or MoqtSessionConfig(),
                publisher_delegate=delegate,
            )
        )

    QuicEndpoint(
        network.host(PUBLISHER),
        port=4443,
        server_tls=ServerTlsContext(alpn_protocols=("moq-00",)),
        on_connection=on_connection,
    )
    client_endpoint = QuicEndpoint(network.host(SUBSCRIBER))
    connection = client_endpoint.connect(
        Address(PUBLISHER, 4443), ConnectionConfig(alpn_protocols=("moq-00",))
    )
    client_session = MoqtSession(
        connection, is_client=True, config=session_config or MoqtSessionConfig()
    )
    return simulator, client_session, publisher_sessions, delegate


class TestSessionSetup:
    def test_session_ready_after_two_rtts(self):
        simulator, session, publisher_sessions, _ = _build()
        simulator.run(until=2.0)
        assert session.ready
        assert session.ready_at == pytest.approx(2 * RTT)
        assert publisher_sessions[0].ready
        assert session.selected_version is not None

    def test_alpn_version_negotiation_makes_client_ready_immediately(self):
        simulator, session, _, _ = _build(
            session_config=MoqtSessionConfig(alpn_version_negotiation=True)
        )
        assert session.ready
        assert session.ready_at == 0.0

    def test_requests_queued_until_ready_are_sent(self):
        simulator, session, _, delegate = _build()
        responses = []
        session.subscribe(TRACK, on_response=lambda s: responses.append(s.state))
        simulator.run(until=2.0)
        assert responses == ["active"]
        assert len(delegate.subscribes) == 1


class TestSubscribeAndFetch:
    def test_subscribe_fetch_and_push(self):
        simulator, session, publisher_sessions, delegate = _build()
        pushed = []
        fetched = []
        subscription = session.subscribe(TRACK, on_object=lambda obj: pushed.append(obj))
        session.joining_fetch(subscription, 1, on_complete=lambda f: fetched.append(f))
        simulator.run(until=2.0)
        assert subscription.is_active
        assert fetched[0].succeeded
        assert [obj.payload for obj in fetched[0].objects] == [b"v1"]
        assert subscription.largest == Location(1, 0)

        publisher_subscription = publisher_sessions[0].publisher_subscriptions()[0]
        update = MoqtObject(group_id=2, object_id=0, payload=b"v2")
        delegate.state.publish(update)
        publisher_sessions[0].publish(publisher_subscription, update)
        simulator.run(until=4.0)
        assert [obj.payload for obj in pushed] == [b"v2"]
        assert subscription.objects_received == 1
        assert session.statistics.objects_received == 2  # fetch object + push

    def test_subscribe_error_propagates(self):
        delegate = RecordingPublisher()
        delegate.accept = False
        simulator, session, _, _ = _build(publisher_delegate=delegate)
        states = []
        session.subscribe(TRACK, on_response=lambda s: states.append((s.state, s.error_code)))
        simulator.run(until=2.0)
        assert states == [("error", int(SubscribeErrorCode.TRACK_DOES_NOT_EXIST))]

    def test_deferred_completion(self):
        delegate = RecordingPublisher(defer=True)
        simulator, session, publisher_sessions, _ = _build(publisher_delegate=delegate)
        states = []
        fetch_results = []
        subscription = session.subscribe(TRACK, on_response=lambda s: states.append(s.state))
        session.joining_fetch(subscription, 1, on_complete=lambda f: fetch_results.append(f.succeeded))
        simulator.run(until=2.0)
        assert states == [] and fetch_results == []
        publisher = publisher_sessions[0]
        sub_request = delegate.subscribes[0][1]
        fetch_request = delegate.fetches[0][1]
        publisher.complete_subscribe(
            sub_request.request_id, SubscribeResult(ok=True, largest=Location(1, 0))
        )
        publisher.complete_fetch(
            fetch_request.request_id,
            FetchResult(ok=True, objects=[MoqtObject(group_id=1, object_id=0, payload=b"v1")]),
        )
        simulator.run(until=4.0)
        assert states == ["active"]
        assert fetch_results == [True]

    def test_standalone_fetch_range(self):
        delegate = RecordingPublisher()
        delegate.state.publish(MoqtObject(group_id=2, object_id=0, payload=b"v2"))
        simulator, session, _, _ = _build(publisher_delegate=delegate)
        done = []
        session.fetch(TRACK, Location(1, 0), Location(2, 0), on_complete=done.append)
        simulator.run(until=2.0)
        assert done[0].succeeded
        assert done[0].objects  # publisher returns its latest object

    def test_unsubscribe_sends_done(self):
        simulator, session, publisher_sessions, _ = _build()
        subscription = session.subscribe(TRACK)
        simulator.run(until=2.0)
        assert publisher_sessions[0].publisher_subscriptions()
        session.unsubscribe(subscription)
        simulator.run(until=4.0)
        assert subscription.state == "done"
        assert publisher_sessions[0].publisher_subscriptions() == []

    def test_unsubscribe_releases_subscriber_side_state(self):
        # A long-lived session that churns through subscribe/unsubscribe
        # cycles (a relay's upstream session) must not accumulate dead
        # subscription entries (§5.1).
        simulator, session, publisher_sessions, delegate = _build()
        received = []
        for _ in range(5):
            subscription = session.subscribe(TRACK, on_object=received.append)
            simulator.run(until=simulator.now + 2.0)
            session.unsubscribe(subscription)
            simulator.run(until=simulator.now + 2.0)
        assert session.subscriptions() == []
        # Objects pushed after the teardown do not reach dead callbacks.
        update = MoqtObject(group_id=9, object_id=0, payload=b"late")
        delegate.state.publish(update)
        for publisher_subscription in publisher_sessions[0].publisher_subscriptions():
            publisher_sessions[0].publish(publisher_subscription, update)
        simulator.run(until=simulator.now + 2.0)
        assert received == []

    def test_fetch_error_when_no_publisher(self):
        simulator, session, publisher_sessions, _ = _build()
        simulator.run(until=1.0)
        publisher_sessions[0].publisher_delegate = None
        results = []
        subscription = session.subscribe(TRACK, on_response=lambda s: results.append(s.state))
        simulator.run(until=3.0)
        assert results == ["error"]

    def test_datagram_object_delivery(self):
        simulator, session, publisher_sessions, delegate = _build(
            session_config=MoqtSessionConfig(use_datagrams=True)
        )
        pushed = []
        session.subscribe(TRACK, on_object=lambda obj: pushed.append(obj.payload))
        simulator.run(until=2.0)
        publisher = publisher_sessions[0]
        publisher_subscription = publisher.publisher_subscriptions()[0]
        publisher.publish(publisher_subscription, MoqtObject(group_id=3, object_id=0, payload=b"dg"))
        simulator.run(until=3.0)
        assert pushed == [b"dg"]

    def test_goaway_recorded(self):
        simulator, session, publisher_sessions, _ = _build()
        simulator.run(until=1.0)
        publisher_sessions[0].goaway("moqt://elsewhere")
        simulator.run(until=2.0)
        assert session.goaway_uri == "moqt://elsewhere"

    def test_session_close_propagates(self):
        simulator, session, publisher_sessions, _ = _build()
        simulator.run(until=1.0)
        closed = []
        publisher_sessions[0].on_closed = lambda s, reason: closed.append(reason)
        session.close("finished")
        simulator.run(until=2.0)
        assert session.closed
        assert publisher_sessions[0].closed
        assert closed


class TestRelay:
    def _build_relay_chain(self):
        simulator = Simulator(seed=31)
        network = Network(simulator)
        for host in (PUBLISHER, RELAY, SUBSCRIBER):
            network.add_host(host)
        network.connect(PUBLISHER, RELAY, LinkConfig(delay=0.02))
        network.connect(RELAY, SUBSCRIBER, LinkConfig(delay=0.01))

        delegate = RecordingPublisher()
        origin_sessions = []

        def on_connection(connection):
            origin_sessions.append(
                MoqtSession(connection, is_client=False, publisher_delegate=delegate)
            )

        QuicEndpoint(
            network.host(PUBLISHER),
            port=4443,
            server_tls=ServerTlsContext(alpn_protocols=("moq-00",)),
            on_connection=on_connection,
        )
        relay = MoqtRelay(network.host(RELAY), upstream=Address(PUBLISHER, 4443))

        def subscriber(host_address: str):
            endpoint = QuicEndpoint(network.host(host_address))
            connection = endpoint.connect(
                Address(RELAY, 4443), ConnectionConfig(alpn_protocols=("moq-00",))
            )
            return MoqtSession(connection, is_client=True)

        return simulator, delegate, origin_sessions, relay, subscriber

    def test_relay_aggregates_subscriptions_and_forwards_objects(self):
        simulator, delegate, origin_sessions, relay, make_subscriber = self._build_relay_chain()
        first = make_subscriber(SUBSCRIBER)
        second = make_subscriber(SUBSCRIBER)
        received_first, received_second = [], []
        first.subscribe(TRACK, on_object=lambda obj: received_first.append(obj.payload))
        second.subscribe(TRACK, on_object=lambda obj: received_second.append(obj.payload))
        simulator.run(until=3.0)
        # Two downstream subscriptions, one upstream subscription.
        assert relay.statistics.downstream_subscribes == 2
        assert relay.statistics.upstream_subscribes == 1
        assert delegate.subscribes and len(delegate.subscribes) == 1

        update = MoqtObject(group_id=2, object_id=0, payload=b"v2")
        delegate.state.publish(update)
        origin = origin_sessions[0]
        origin.publish(origin.publisher_subscriptions()[0], update)
        simulator.run(until=6.0)
        assert received_first == [b"v2"]
        assert received_second == [b"v2"]
        assert relay.statistics.objects_forwarded == 2

    def test_relay_serves_fetch_from_cache_after_first_object(self):
        simulator, delegate, origin_sessions, relay, make_subscriber = self._build_relay_chain()
        subscriber = make_subscriber(SUBSCRIBER)
        subscription = subscriber.subscribe(TRACK)
        simulator.run(until=3.0)
        update = MoqtObject(group_id=2, object_id=0, payload=b"v2")
        delegate.state.publish(update)
        origin = origin_sessions[0]
        origin.publish(origin.publisher_subscriptions()[0], update)
        simulator.run(until=5.0)

        fetches = []
        late = make_subscriber(SUBSCRIBER)
        late_subscription = late.subscribe(TRACK)
        late.joining_fetch(late_subscription, 1, on_complete=lambda f: fetches.append(f))
        simulator.run(until=8.0)
        assert fetches and fetches[0].succeeded
        assert [obj.payload for obj in fetches[0].objects] == [b"v2"]
        assert relay.statistics.fetches_served_from_cache == 1

    def test_relay_tears_down_upstream_when_last_subscriber_unsubscribes(self):
        simulator, delegate, origin_sessions, relay, make_subscriber = self._build_relay_chain()
        first = make_subscriber(SUBSCRIBER)
        second = make_subscriber(SUBSCRIBER)
        first_subscription = first.subscribe(TRACK)
        second_subscription = second.subscribe(TRACK)
        simulator.run(until=3.0)
        assert origin_sessions[0].publisher_subscriptions()

        first.unsubscribe(first_subscription)
        simulator.run(until=5.0)
        # One subscriber remains: the upstream subscription must survive.
        assert relay.statistics.upstream_unsubscribes == 0
        assert origin_sessions[0].publisher_subscriptions()

        second.unsubscribe(second_subscription)
        simulator.run(until=7.0)
        # Last subscriber gone: the relay must not leak its upstream
        # subscription (§5.1 state clean-up).
        assert relay.statistics.downstream_unsubscribes == 2
        assert relay.statistics.upstream_unsubscribes == 1
        assert relay.tracks()[TRACK].upstream_subscription is None
        assert origin_sessions[0].publisher_subscriptions() == []

        # A new subscriber re-creates the upstream subscription.
        third = make_subscriber(SUBSCRIBER)
        states = []
        third.subscribe(TRACK, on_response=lambda s: states.append(s.state))
        simulator.run(until=10.0)
        assert states == ["active"]
        assert relay.statistics.upstream_subscribes == 2

    def test_unsubscribe_racing_a_deferred_subscribe_still_tears_down(self):
        # The relay defers the first SUBSCRIBE until the upstream answers; an
        # UNSUBSCRIBE arriving within that window must not leave a ghost
        # subscriber that the late upstream response resurrects.
        simulator, delegate, origin_sessions, relay, make_subscriber = self._build_relay_chain()
        subscriber = make_subscriber(SUBSCRIBER)
        received = []
        subscription = subscriber.subscribe(TRACK, on_object=lambda obj: received.append(obj))
        subscriber.unsubscribe(subscription)  # before the upstream ever answers
        simulator.run(until=5.0)
        assert relay.statistics.downstream_unsubscribes == 1
        assert relay.tracks()[TRACK].downstream == []
        assert relay.tracks()[TRACK].upstream_subscription is None
        assert origin_sessions[0].publisher_subscriptions() == []

        update = MoqtObject(group_id=2, object_id=0, payload=b"v2")
        delegate.state.publish(update)
        for publisher_subscription in origin_sessions[0].publisher_subscriptions():
            origin_sessions[0].publish(publisher_subscription, update)
        simulator.run(until=8.0)
        assert received == [], "no objects reach an unsubscribed session"

    def test_upstream_rejection_releases_relay_track_state(self):
        simulator, delegate, origin_sessions, relay, make_subscriber = self._build_relay_chain()
        delegate.accept = False
        subscriber = make_subscriber(SUBSCRIBER)
        states = []
        subscriber.subscribe(TRACK, on_response=lambda s: states.append(s.state))
        simulator.run(until=3.0)
        assert states == ["error"]
        # The failed attempt must not pin the track: no ghost downstream
        # entry, no dead upstream subscription blocking future retries, and
        # no dead entry lingering in the upstream session's routing maps.
        assert relay.tracks()[TRACK].downstream == []
        assert relay.tracks()[TRACK].upstream_subscription is None
        assert relay._upstream_session.subscriptions() == []

        delegate.accept = True
        retry_states = []
        retry = make_subscriber(SUBSCRIBER)
        retry.subscribe(TRACK, on_response=lambda s: retry_states.append(s.state))
        simulator.run(until=6.0)
        assert retry_states == ["active"], "a later subscriber retries upstream"
        assert relay.statistics.upstream_subscribes == 2

    def test_upstream_rejection_errors_every_waiter_including_late_joiners(self):
        # A second subscriber arriving while the upstream subscribe is still
        # in flight must share the upstream's outcome — not be answered
        # ok=True optimistically and then stranded on a dead track.
        simulator, delegate, origin_sessions, relay, make_subscriber = self._build_relay_chain()
        delegate.accept = False
        first = make_subscriber(SUBSCRIBER)
        second = make_subscriber(SUBSCRIBER)
        first_states, second_states = [], []
        first.subscribe(TRACK, on_response=lambda s: first_states.append(s.state))
        second.subscribe(TRACK, on_response=lambda s: second_states.append(s.state))
        simulator.run(until=4.0)
        assert first_states == ["error"]
        assert second_states == ["error"]
        assert relay.tracks()[TRACK].downstream == []
        assert relay.tracks()[TRACK].awaiting_upstream == []
        assert relay.tracks()[TRACK].upstream_subscription is None

    def test_stale_upstream_response_does_not_consume_replacement_waiters(self):
        # A's upstream subscription is torn down while the origin's answer is
        # in flight; B's replacement subscription is pending.  The stale
        # answer crossing the UNSUBSCRIBE must not be delivered to B.
        delegate = RecordingPublisher(defer=True)
        simulator = Simulator(seed=41)
        network = Network(simulator)
        for host in (PUBLISHER, RELAY, SUBSCRIBER):
            network.add_host(host)
        network.connect(PUBLISHER, RELAY, LinkConfig(delay=0.02))
        network.connect(RELAY, SUBSCRIBER, LinkConfig(delay=0.01))
        origin_sessions = []
        QuicEndpoint(
            network.host(PUBLISHER),
            port=4443,
            server_tls=ServerTlsContext(alpn_protocols=("moq-00",)),
            on_connection=lambda conn: origin_sessions.append(
                MoqtSession(conn, is_client=False, publisher_delegate=delegate)
            ),
        )
        relay = MoqtRelay(network.host(RELAY), upstream=Address(PUBLISHER, 4443))

        def make_subscriber():
            endpoint = QuicEndpoint(network.host(SUBSCRIBER))
            connection = endpoint.connect(
                Address(RELAY, 4443), ConnectionConfig(alpn_protocols=("moq-00",))
            )
            return MoqtSession(connection, is_client=True)

        first, second = make_subscriber(), make_subscriber()
        subscription_a = first.subscribe(TRACK)
        simulator.run(until=2.0)
        assert len(delegate.subscribes) == 1  # sub1 deferred at the origin

        # Same instant: A leaves (UNSUBSCRIBE departs relay-wards), B joins,
        # and the origin answers sub1 with an error — messages cross.
        first.unsubscribe(subscription_a)
        b_states = []
        second.subscribe(TRACK, on_response=lambda s: b_states.append(s.state))
        origin = origin_sessions[0]
        origin.complete_subscribe(
            delegate.subscribes[0][1].request_id,
            SubscribeResult(
                ok=False, error_code=SubscribeErrorCode.TRACK_DOES_NOT_EXIST, reason="stale"
            ),
        )
        simulator.run(until=4.0)
        assert b_states == [], "B must not receive sub1's stale error"
        assert len(delegate.subscribes) == 2  # B's replacement reached the origin

        origin.complete_subscribe(
            delegate.subscribes[1][1].request_id,
            SubscribeResult(ok=True, largest=Location(1, 0)),
        )
        simulator.run(until=6.0)
        assert b_states == ["active"]
        track = relay.tracks()[TRACK]
        assert len(track.downstream) == 1
        assert track.upstream_subscription is not None
        assert track.upstream_subscription.is_active

    def test_joiners_during_upstream_round_trip_become_active_on_success(self):
        simulator, delegate, origin_sessions, relay, make_subscriber = self._build_relay_chain()
        first = make_subscriber(SUBSCRIBER)
        second = make_subscriber(SUBSCRIBER)
        states = []
        first.subscribe(TRACK, on_response=lambda s: states.append(("first", s.state)))
        second.subscribe(TRACK, on_response=lambda s: states.append(("second", s.state)))
        simulator.run(until=4.0)
        assert sorted(states) == [("first", "active"), ("second", "active")]
        assert relay.statistics.upstream_subscribes == 1
        assert len(relay.tracks()[TRACK].downstream) == 2

    def test_relay_tears_down_upstream_when_last_subscriber_disconnects(self):
        simulator, delegate, origin_sessions, relay, make_subscriber = self._build_relay_chain()
        subscriber = make_subscriber(SUBSCRIBER)
        subscriber.subscribe(TRACK)
        simulator.run(until=3.0)
        assert relay.tracks()[TRACK].downstream
        subscriber.close("gone")
        simulator.run(until=5.0)
        assert relay.tracks()[TRACK].downstream == []
        assert relay.tracks()[TRACK].upstream_subscription is None
        assert origin_sessions[0].publisher_subscriptions() == []

    def test_relay_forwards_fetch_upstream_on_cache_miss(self):
        simulator, delegate, origin_sessions, relay, make_subscriber = self._build_relay_chain()
        subscriber = make_subscriber(SUBSCRIBER)
        fetches = []
        subscription = subscriber.subscribe(TRACK)
        subscriber.joining_fetch(subscription, 1, on_complete=lambda f: fetches.append(f))
        simulator.run(until=5.0)
        assert fetches and fetches[0].succeeded
        assert [obj.payload for obj in fetches[0].objects] == [b"v1"]
        assert relay.statistics.fetches_forwarded_upstream == 1
