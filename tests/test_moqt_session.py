"""Tests for MoQT sessions: setup, subscribe, fetch, publish, relays."""

from __future__ import annotations

import pytest

from repro.moqt.errors import SubscribeErrorCode
from repro.moqt.messages import FilterType
from repro.moqt.objectmodel import Location, MoqtObject, TrackState
from repro.moqt.relay import MoqtRelay
from repro.moqt.session import (
    FetchResult,
    MoqtSession,
    MoqtSessionConfig,
    SubscribeResult,
)
from repro.moqt.track import FullTrackName
from repro.netsim.link import LinkConfig
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.quic.connection import ConnectionConfig
from repro.quic.endpoint import QuicEndpoint
from repro.quic.tls import ServerTlsContext

PUBLISHER = "9.9.9.9"
SUBSCRIBER = "10.0.0.1"
RELAY = "5.5.5.5"
RTT = 0.05
TRACK = FullTrackName.of(["dns", "a"], b"example")


class RecordingPublisher:
    """A publisher delegate serving one in-memory track."""

    def __init__(self, defer: bool = False) -> None:
        self.state = TrackState(TRACK)
        self.state.publish(MoqtObject(group_id=1, object_id=0, payload=b"v1"))
        self.subscribes = []
        self.fetches = []
        self.defer = defer
        self.accept = True

    def handle_subscribe(self, session, message):
        self.subscribes.append((session, message))
        if self.defer:
            return None
        if not self.accept:
            return SubscribeResult(
                ok=False, error_code=SubscribeErrorCode.TRACK_DOES_NOT_EXIST, reason="nope"
            )
        return SubscribeResult(ok=True, largest=self.state.largest)

    def handle_fetch(self, session, message, full_track_name):
        self.fetches.append((session, message, full_track_name))
        if self.defer:
            return None
        return FetchResult(ok=True, objects=self.state.latest_objects(1), largest=self.state.largest)


def _build(publisher_delegate=None, session_config=None):
    simulator = Simulator(seed=21)
    network = Network(simulator)
    network.add_host(PUBLISHER)
    network.add_host(SUBSCRIBER)
    network.connect(PUBLISHER, SUBSCRIBER, LinkConfig(delay=RTT / 2))
    publisher_sessions = []
    delegate = publisher_delegate if publisher_delegate is not None else RecordingPublisher()

    def on_connection(connection):
        publisher_sessions.append(
            MoqtSession(
                connection,
                is_client=False,
                config=session_config or MoqtSessionConfig(),
                publisher_delegate=delegate,
            )
        )

    QuicEndpoint(
        network.host(PUBLISHER),
        port=4443,
        server_tls=ServerTlsContext(alpn_protocols=("moq-00",)),
        on_connection=on_connection,
    )
    client_endpoint = QuicEndpoint(network.host(SUBSCRIBER))
    connection = client_endpoint.connect(
        Address(PUBLISHER, 4443), ConnectionConfig(alpn_protocols=("moq-00",))
    )
    client_session = MoqtSession(
        connection, is_client=True, config=session_config or MoqtSessionConfig()
    )
    return simulator, client_session, publisher_sessions, delegate


class TestSessionSetup:
    def test_session_ready_after_two_rtts(self):
        simulator, session, publisher_sessions, _ = _build()
        simulator.run(until=2.0)
        assert session.ready
        assert session.ready_at == pytest.approx(2 * RTT)
        assert publisher_sessions[0].ready
        assert session.selected_version is not None

    def test_alpn_version_negotiation_makes_client_ready_immediately(self):
        simulator, session, _, _ = _build(
            session_config=MoqtSessionConfig(alpn_version_negotiation=True)
        )
        assert session.ready
        assert session.ready_at == 0.0

    def test_requests_queued_until_ready_are_sent(self):
        simulator, session, _, delegate = _build()
        responses = []
        session.subscribe(TRACK, on_response=lambda s: responses.append(s.state))
        simulator.run(until=2.0)
        assert responses == ["active"]
        assert len(delegate.subscribes) == 1


class TestSubscribeAndFetch:
    def test_subscribe_fetch_and_push(self):
        simulator, session, publisher_sessions, delegate = _build()
        pushed = []
        fetched = []
        subscription = session.subscribe(TRACK, on_object=lambda obj: pushed.append(obj))
        session.joining_fetch(subscription, 1, on_complete=lambda f: fetched.append(f))
        simulator.run(until=2.0)
        assert subscription.is_active
        assert fetched[0].succeeded
        assert [obj.payload for obj in fetched[0].objects] == [b"v1"]
        assert subscription.largest == Location(1, 0)

        publisher_subscription = publisher_sessions[0].publisher_subscriptions()[0]
        update = MoqtObject(group_id=2, object_id=0, payload=b"v2")
        delegate.state.publish(update)
        publisher_sessions[0].publish(publisher_subscription, update)
        simulator.run(until=4.0)
        assert [obj.payload for obj in pushed] == [b"v2"]
        assert subscription.objects_received == 1
        assert session.statistics.objects_received == 2  # fetch object + push

    def test_subscribe_error_propagates(self):
        delegate = RecordingPublisher()
        delegate.accept = False
        simulator, session, _, _ = _build(publisher_delegate=delegate)
        states = []
        session.subscribe(TRACK, on_response=lambda s: states.append((s.state, s.error_code)))
        simulator.run(until=2.0)
        assert states == [("error", int(SubscribeErrorCode.TRACK_DOES_NOT_EXIST))]

    def test_deferred_completion(self):
        delegate = RecordingPublisher(defer=True)
        simulator, session, publisher_sessions, _ = _build(publisher_delegate=delegate)
        states = []
        fetch_results = []
        subscription = session.subscribe(TRACK, on_response=lambda s: states.append(s.state))
        session.joining_fetch(subscription, 1, on_complete=lambda f: fetch_results.append(f.succeeded))
        simulator.run(until=2.0)
        assert states == [] and fetch_results == []
        publisher = publisher_sessions[0]
        sub_request = delegate.subscribes[0][1]
        fetch_request = delegate.fetches[0][1]
        publisher.complete_subscribe(
            sub_request.request_id, SubscribeResult(ok=True, largest=Location(1, 0))
        )
        publisher.complete_fetch(
            fetch_request.request_id,
            FetchResult(ok=True, objects=[MoqtObject(group_id=1, object_id=0, payload=b"v1")]),
        )
        simulator.run(until=4.0)
        assert states == ["active"]
        assert fetch_results == [True]

    def test_standalone_fetch_range(self):
        delegate = RecordingPublisher()
        delegate.state.publish(MoqtObject(group_id=2, object_id=0, payload=b"v2"))
        simulator, session, _, _ = _build(publisher_delegate=delegate)
        done = []
        session.fetch(TRACK, Location(1, 0), Location(2, 0), on_complete=done.append)
        simulator.run(until=2.0)
        assert done[0].succeeded
        assert done[0].objects  # publisher returns its latest object

    def test_unsubscribe_sends_done(self):
        simulator, session, publisher_sessions, _ = _build()
        subscription = session.subscribe(TRACK)
        simulator.run(until=2.0)
        assert publisher_sessions[0].publisher_subscriptions()
        session.unsubscribe(subscription)
        simulator.run(until=4.0)
        assert subscription.state == "done"
        assert publisher_sessions[0].publisher_subscriptions() == []

    def test_fetch_error_when_no_publisher(self):
        simulator, session, publisher_sessions, _ = _build()
        simulator.run(until=1.0)
        publisher_sessions[0].publisher_delegate = None
        results = []
        subscription = session.subscribe(TRACK, on_response=lambda s: results.append(s.state))
        simulator.run(until=3.0)
        assert results == ["error"]

    def test_datagram_object_delivery(self):
        simulator, session, publisher_sessions, delegate = _build(
            session_config=MoqtSessionConfig(use_datagrams=True)
        )
        pushed = []
        session.subscribe(TRACK, on_object=lambda obj: pushed.append(obj.payload))
        simulator.run(until=2.0)
        publisher = publisher_sessions[0]
        publisher_subscription = publisher.publisher_subscriptions()[0]
        publisher.publish(publisher_subscription, MoqtObject(group_id=3, object_id=0, payload=b"dg"))
        simulator.run(until=3.0)
        assert pushed == [b"dg"]

    def test_goaway_recorded(self):
        simulator, session, publisher_sessions, _ = _build()
        simulator.run(until=1.0)
        publisher_sessions[0].goaway("moqt://elsewhere")
        simulator.run(until=2.0)
        assert session.goaway_uri == "moqt://elsewhere"

    def test_session_close_propagates(self):
        simulator, session, publisher_sessions, _ = _build()
        simulator.run(until=1.0)
        closed = []
        publisher_sessions[0].on_closed = lambda s, reason: closed.append(reason)
        session.close("finished")
        simulator.run(until=2.0)
        assert session.closed
        assert publisher_sessions[0].closed
        assert closed


class TestRelay:
    def _build_relay_chain(self):
        simulator = Simulator(seed=31)
        network = Network(simulator)
        for host in (PUBLISHER, RELAY, SUBSCRIBER):
            network.add_host(host)
        network.connect(PUBLISHER, RELAY, LinkConfig(delay=0.02))
        network.connect(RELAY, SUBSCRIBER, LinkConfig(delay=0.01))

        delegate = RecordingPublisher()
        origin_sessions = []

        def on_connection(connection):
            origin_sessions.append(
                MoqtSession(connection, is_client=False, publisher_delegate=delegate)
            )

        QuicEndpoint(
            network.host(PUBLISHER),
            port=4443,
            server_tls=ServerTlsContext(alpn_protocols=("moq-00",)),
            on_connection=on_connection,
        )
        relay = MoqtRelay(network.host(RELAY), upstream=Address(PUBLISHER, 4443))

        def subscriber(host_address: str):
            endpoint = QuicEndpoint(network.host(host_address))
            connection = endpoint.connect(
                Address(RELAY, 4443), ConnectionConfig(alpn_protocols=("moq-00",))
            )
            return MoqtSession(connection, is_client=True)

        return simulator, delegate, origin_sessions, relay, subscriber

    def test_relay_aggregates_subscriptions_and_forwards_objects(self):
        simulator, delegate, origin_sessions, relay, make_subscriber = self._build_relay_chain()
        first = make_subscriber(SUBSCRIBER)
        second = make_subscriber(SUBSCRIBER)
        received_first, received_second = [], []
        first.subscribe(TRACK, on_object=lambda obj: received_first.append(obj.payload))
        second.subscribe(TRACK, on_object=lambda obj: received_second.append(obj.payload))
        simulator.run(until=3.0)
        # Two downstream subscriptions, one upstream subscription.
        assert relay.statistics.downstream_subscribes == 2
        assert relay.statistics.upstream_subscribes == 1
        assert delegate.subscribes and len(delegate.subscribes) == 1

        update = MoqtObject(group_id=2, object_id=0, payload=b"v2")
        delegate.state.publish(update)
        origin = origin_sessions[0]
        origin.publish(origin.publisher_subscriptions()[0], update)
        simulator.run(until=6.0)
        assert received_first == [b"v2"]
        assert received_second == [b"v2"]
        assert relay.statistics.objects_forwarded == 2

    def test_relay_serves_fetch_from_cache_after_first_object(self):
        simulator, delegate, origin_sessions, relay, make_subscriber = self._build_relay_chain()
        subscriber = make_subscriber(SUBSCRIBER)
        subscription = subscriber.subscribe(TRACK)
        simulator.run(until=3.0)
        update = MoqtObject(group_id=2, object_id=0, payload=b"v2")
        delegate.state.publish(update)
        origin = origin_sessions[0]
        origin.publish(origin.publisher_subscriptions()[0], update)
        simulator.run(until=5.0)

        fetches = []
        late = make_subscriber(SUBSCRIBER)
        late_subscription = late.subscribe(TRACK)
        late.joining_fetch(late_subscription, 1, on_complete=lambda f: fetches.append(f))
        simulator.run(until=8.0)
        assert fetches and fetches[0].succeeded
        assert [obj.payload for obj in fetches[0].objects] == [b"v2"]
        assert relay.statistics.fetches_served_from_cache == 1

    def test_relay_forwards_fetch_upstream_on_cache_miss(self):
        simulator, delegate, origin_sessions, relay, make_subscriber = self._build_relay_chain()
        subscriber = make_subscriber(SUBSCRIBER)
        fetches = []
        subscription = subscriber.subscribe(TRACK)
        subscriber.joining_fetch(subscription, 1, on_complete=lambda f: fetches.append(f))
        simulator.run(until=5.0)
        assert fetches and fetches[0].succeeded
        assert [obj.payload for obj in fetches[0].objects] == [b"v1"]
        assert relay.statistics.fetches_forwarded_upstream == 1
