"""Tests pinned to the fast-path overhaul.

Covers the refactored varint codec against the RFC 9000 boundary values, the
rewritten event heap (lazy deletion, compaction, O(1) pending count, lazy
timers), determinism guarantees the simulator must preserve (FIFO
tie-breaking, seeded-RNG reproducibility), and the encode-once fan-out path.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.moqt.datastream import (
    DataStreamParser,
    SubgroupStreamHeader,
    encode_subgroup_object,
    encode_subgroup_stream_chunk,
)
from repro.moqt.objectmodel import MoqtObject
from repro.netsim.simulator import PeriodicTask, Simulator, Timer
from repro.quic.varint import (
    MAX_VARINT,
    VarintError,
    VarintReader,
    VarintWriter,
    append_varint,
    decode_varint,
    encode_varint,
    varint_size,
)

# RFC 9000 §16: the varint size-class boundaries.
BOUNDARY_VALUES = [
    (0, 1),
    (1, 1),
    (63, 1),
    (64, 2),
    (16383, 2),
    (16384, 4),
    ((1 << 30) - 1, 4),
    (1 << 30, 8),
    ((1 << 62) - 1, 8),
]


class TestVarintBoundaries:
    @pytest.mark.parametrize("value,size", BOUNDARY_VALUES)
    def test_boundary_sizes(self, value, size):
        assert varint_size(value) == size
        assert len(encode_varint(value)) == size

    @pytest.mark.parametrize("value,size", BOUNDARY_VALUES)
    def test_boundary_roundtrip(self, value, size):
        encoded = encode_varint(value)
        decoded, consumed = decode_varint(encoded)
        assert decoded == value
        assert consumed == size

    def test_max_varint_is_2_62_minus_1(self):
        assert MAX_VARINT == (1 << 62) - 1
        assert decode_varint(encode_varint(MAX_VARINT))[0] == MAX_VARINT

    @pytest.mark.parametrize("value", [-1, MAX_VARINT + 1, 1 << 62, 1 << 70])
    def test_out_of_range_rejected(self, value):
        with pytest.raises(VarintError):
            encode_varint(value)
        with pytest.raises(VarintError):
            varint_size(value)
        with pytest.raises(VarintError):
            append_varint(bytearray(), value)

    @pytest.mark.parametrize("value", [64, 16384, 1 << 30, MAX_VARINT])
    def test_truncated_encodings_rejected(self, value):
        encoded = encode_varint(value)
        for cut in range(1, len(encoded)):
            with pytest.raises(VarintError):
                decode_varint(encoded[:cut])

    def test_append_varint_matches_encode_varint(self):
        for value, _ in BOUNDARY_VALUES:
            buffer = bytearray()
            append_varint(buffer, value)
            assert bytes(buffer) == encode_varint(value)


class TestVarintProperties:
    @given(st.integers(min_value=0, max_value=MAX_VARINT))
    @settings(max_examples=300)
    def test_roundtrip_any_value(self, value):
        encoded = encode_varint(value)
        decoded, consumed = decode_varint(encoded)
        assert (decoded, consumed) == (value, len(encoded))

    @given(st.lists(st.integers(min_value=0, max_value=MAX_VARINT), min_size=1, max_size=24))
    @settings(max_examples=200)
    def test_reader_consumes_concatenated_stream(self, values):
        writer = VarintWriter()
        for value in values:
            writer.write_varint(value)
        blob = writer.getvalue()
        for source in (blob, bytearray(blob), memoryview(blob)):
            reader = VarintReader(source)
            assert [reader.read_varint() for _ in values] == values
            assert reader.at_end()

    @given(st.binary(min_size=0, max_size=64), st.binary(min_size=0, max_size=64))
    @settings(max_examples=200)
    def test_length_prefixed_roundtrip(self, first, second):
        writer = VarintWriter()
        writer.write_length_prefixed(first)
        writer.write_length_prefixed(second)
        reader = VarintReader(writer.getvalue())
        assert reader.read_length_prefixed() == first
        assert reader.read_length_prefixed() == second
        assert reader.remaining == 0


def _run_labelled_schedule(seed: int) -> list[tuple[str, float]]:
    """A churn-heavy schedule whose execution order must be reproducible."""
    simulator = Simulator(seed=seed)
    order: list[tuple[str, float]] = []
    events = []
    for index in range(50):
        delay = simulator.rng.random()
        label = f"event-{index}"
        events.append(
            simulator.call_later(delay, lambda label=label, s=simulator: order.append((label, s.now)))
        )
    for index in range(0, 50, 3):
        events[index].cancel()
    # Same-instant events must keep scheduling (FIFO) order.
    for index in range(10):
        simulator.call_at(2.0, lambda index=index, s=simulator: order.append((f"tie-{index}", s.now)))
    simulator.run_until_idle()
    return order


class TestSimulatorDeterminism:
    def test_seeded_runs_produce_identical_event_orders(self):
        assert _run_labelled_schedule(seed=42) == _run_labelled_schedule(seed=42)

    def test_different_seeds_differ(self):
        assert _run_labelled_schedule(seed=1) != _run_labelled_schedule(seed=2)

    def test_fifo_tie_breaking_survives_cancellation_churn(self):
        simulator = Simulator()
        order = []
        cancelled = [
            simulator.call_at(1.0, lambda: order.append("dead")) for _ in range(200)
        ]
        live = [
            simulator.call_at(1.0, lambda index=index: order.append(index))
            for index in range(20)
        ]
        for event in cancelled:
            event.cancel()  # >50% of the heap dead: triggers compaction
        del live
        simulator.run_until_idle()
        assert order == list(range(20))

    def test_compaction_shrinks_the_heap(self):
        simulator = Simulator()
        events = [simulator.call_later(1.0, lambda: None) for _ in range(200)]
        assert simulator.pending_events == 200
        for event in events[:150]:
            event.cancel()
        # >50% cancelled: the queue must have been rebuilt (dropping the dead
        # entries present at compaction time) rather than retaining all 200.
        assert simulator.pending_events == 50
        assert len(simulator._queue) < 150
        assert simulator.run_until_idle() == 50

    def test_pending_events_is_live_through_cancel_and_run(self):
        simulator = Simulator()
        first = simulator.call_later(1.0, lambda: None)
        simulator.call_later(2.0, lambda: None)
        assert simulator.pending_events == 2
        first.cancel()
        assert simulator.pending_events == 1
        first.cancel()  # idempotent: must not double-decrement
        assert simulator.pending_events == 1
        simulator.run_until_idle()
        assert simulator.pending_events == 0

    def test_event_args_are_passed_to_callback(self):
        simulator = Simulator()
        seen = []
        simulator.call_later(0.5, seen.append, "payload")
        simulator.run_until_idle()
        assert seen == ["payload"]


class TestTimerLazyRestart:
    def test_extending_restarts_do_not_grow_the_heap(self):
        simulator = Simulator()
        timer = Timer(simulator, lambda: None)
        timer.start(1.0)
        baseline = len(simulator._queue)
        for _ in range(100):
            timer.start(1.0)  # same relative delay from t=0: pure extends
        assert len(simulator._queue) == baseline
        assert simulator.pending_events == 1

    def test_extended_deadline_fires_once_at_the_extension(self):
        simulator = Simulator()
        fired = []
        timer = Timer(simulator, lambda: fired.append(simulator.now))
        timer.start(1.0)
        simulator.run(until=0.5)
        timer.start(1.0)  # deadline moves to 1.5
        assert timer.deadline == 1.5
        simulator.run_until_idle()
        assert fired == [1.5]

    def test_shortened_deadline_fires_early(self):
        simulator = Simulator()
        fired = []
        timer = Timer(simulator, lambda: fired.append(simulator.now))
        timer.start(5.0)
        timer.start(1.0)
        simulator.run_until_idle()
        assert fired == [1.0]

    def test_stop_after_extension_cancels(self):
        simulator = Simulator()
        fired = []
        timer = Timer(simulator, lambda: fired.append(True))
        timer.start(1.0)
        timer.start(3.0)
        timer.stop()
        simulator.run_until_idle()
        assert fired == []
        assert simulator.pending_events == 0


class TestPeriodicTaskRestart:
    def test_start_while_running_does_not_leak_a_second_chain(self):
        simulator = Simulator()
        fired = []
        task = PeriodicTask(simulator, 1.0, lambda: fired.append(simulator.now))
        task.start()
        simulator.run(until=2.5)
        assert fired == [1.0, 2.0]
        task.start()  # restart mid-flight: the armed tick must be cancelled
        simulator.run(until=6.0)
        task.stop()
        # One tick per interval from the restart at t=2.5 — a leaked chain
        # would produce two ticks per interval.
        assert fired == [1.0, 2.0, 3.5, 4.5, 5.5]


class TestPeriodicTaskReentrantRestart:
    def test_start_from_within_the_callback_does_not_double_fire(self):
        simulator = Simulator()
        fired = []
        task: list[PeriodicTask] = []

        def callback() -> None:
            fired.append(simulator.now)
            if len(fired) == 2:
                task[0].start()  # re-phase from inside the tick

        task.append(PeriodicTask(simulator, 1.0, callback))
        task[0].start()
        simulator.run(until=5.5)
        task[0].stop()
        # One tick per interval throughout; a second chain armed by the
        # re-entrant start() would fire twice per interval after t=2.
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]


class TestChurnDeterminism:
    """Seeded-determinism canary extended to churn (E12) and in-band E13.

    Wire bytes and seeded event ordering are contract even across relay
    kills: two runs with the same seed must produce bit-identical
    per-subscriber delivery sequences and FailoverRecord latencies.
    """

    def _churn(self):
        from repro.experiments.relay_churn import run_relay_churn

        return run_relay_churn(
            subscribers=30, mid_relays=2, edge_per_mid=2,
            updates_before=2, updates_between=2, updates_after=2,
        )

    def test_relay_churn_delivery_sequences_are_bit_identical(self):
        first, second = self._churn(), self._churn()
        assert first.delivery_sequences == second.delivery_sequences
        assert any(first.delivery_sequences.values()), "sequences were recorded"

    def test_relay_churn_failover_records_are_bit_identical(self):
        first, second = self._churn(), self._churn()
        for event_a, event_b in zip(first.events, second.events):
            assert event_a.at == event_b.at
            assert [
                (r.kind, r.name, r.new_parent, r.detached_at, r.reattached_at)
                for r in event_a.records
            ] == [
                (r.kind, r.name, r.new_parent, r.detached_at, r.reattached_at)
                for r in event_b.records
            ]
        assert first.rows() == second.rows()
        assert first.summary_row() == second.summary_row()

    def test_failure_detection_runs_are_bit_identical(self):
        from repro.experiments.failure_detection import run_failure_detection

        kwargs = dict(
            subscribers=24, mid_relays=2, edge_per_mid=2,
            updates_before=2, updates_between=4, updates_after=4,
        )
        first = run_failure_detection(**kwargs)
        second = run_failure_detection(**kwargs)
        assert first.delivery_sequences == second.delivery_sequences
        assert [
            (s.killed, s.detected_via, s.detection_latency, s.model_detection_latency)
            for s in first.samples
        ] == [
            (s.killed, s.detected_via, s.detection_latency, s.model_detection_latency)
            for s in second.samples
        ]
        assert first.rows() == second.rows()


class TestAckWireIdentity:
    def test_hand_rolled_ack_matches_packet_encoding(self):
        from repro.netsim.packet import Address
        from repro.quic.connection import ConnectionConfig, QuicConnection
        from repro.quic.frames import AckFrame
        from repro.quic.packet import Packet, PacketType

        sent: list[bytes] = []
        simulator = Simulator()
        connection = QuicConnection(
            simulator=simulator,
            send_datagram=lambda payload, destination: sent.append(payload),
            local_address=Address("client", 1),
            peer_address=Address("server", 2),
            connection_id=(1 << 48) | 12345,
            is_client=True,
            config=ConnectionConfig(),
        )
        connection._received_ranges = [[0, 77]]
        for handshake_complete in (False, True):
            connection.handshake_complete = handshake_complete
            expected_pn = connection._next_packet_number
            connection._send_ack()
            reference = Packet(
                packet_type=PacketType.ONE_RTT if handshake_complete else PacketType.INITIAL,
                connection_id=connection.connection_id,
                packet_number=expected_pn,
                frames=(AckFrame(largest=77),),
            ).encode()
            assert sent[-1] == reference

    def test_gapped_receive_set_emits_exact_ranges(self):
        from repro.netsim.packet import Address
        from repro.quic.connection import ConnectionConfig, QuicConnection
        from repro.quic.frames import AckRangesFrame
        from repro.quic.packet import Packet, PacketType

        sent: list[bytes] = []
        simulator = Simulator()
        connection = QuicConnection(
            simulator=simulator,
            send_datagram=lambda payload, destination: sent.append(payload),
            local_address=Address("client", 1),
            peer_address=Address("server", 2),
            connection_id=9,
            is_client=True,
            config=ConnectionConfig(),
        )
        connection.handshake_complete = True
        connection._received_ranges = [[0, 4], [6, 9], [12, 12]]
        expected_pn = connection._next_packet_number
        connection._send_ack()
        reference = Packet(
            packet_type=PacketType.ONE_RTT,
            connection_id=9,
            packet_number=expected_pn,
            frames=(AckRangesFrame(largest=12, delay_us=0, ranges=((0, 4), (6, 9), (12, 12))),),
        ).encode()
        assert sent[-1] == reference
        decoded = Packet.decode(sent[-1])
        (frame,) = decoded.frames
        assert isinstance(frame, AckRangesFrame)
        assert frame.ranges == ((0, 4), (6, 9), (12, 12))


class TestEncodeOnceFanout:
    def _object(self) -> MoqtObject:
        return MoqtObject(group_id=7, object_id=3, payload=b"payload-bytes", extensions=b"xx")

    def test_cached_body_produces_identical_wire_bytes(self):
        obj = self._object()
        cached = encode_subgroup_object(obj)
        for alias in (1, 63, 64, 5000):
            fresh = encode_subgroup_stream_chunk(alias, obj)
            reused = encode_subgroup_stream_chunk(alias, obj, cached)
            assert fresh == reused
            header = SubgroupStreamHeader(
                track_alias=alias,
                group_id=obj.group_id,
                subgroup_id=obj.subgroup_id,
                publisher_priority=obj.publisher_priority,
            )
            assert fresh == header.encode() + cached

    def test_parser_decodes_chunk_across_arbitrary_splits(self):
        obj = self._object()
        chunk = encode_subgroup_stream_chunk(9, obj, encode_subgroup_object(obj))
        for split in range(1, len(chunk)):
            parser = DataStreamParser()
            objects = parser.feed(chunk[:split], fin=False)
            objects += parser.feed(chunk[split:], fin=True)
            assert [o.payload for o in objects] == [obj.payload]
            assert parser.finished
            assert parser.header is not None and parser.header.track_alias == 9
