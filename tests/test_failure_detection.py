"""Tests for E13 (in-band failure detection) and the detection-latency model."""

from __future__ import annotations

import pytest

from repro.analysis.churn import recovery_model
from repro.analysis.detection import (
    DEFAULT_BACKOFF_CAP,
    DEFAULT_MAX_TIMEOUTS,
    DEFAULT_SUSPECT_AFTER,
    DetectionModel,
    give_up_latency,
    pto_fire_offsets,
    suspect_latency,
)
from repro.experiments.failure_detection import run_failure_detection
from repro.quic.connection import QuicConnection


class TestDetectionModelClosedForms:
    def test_model_constants_pin_the_transport_defaults(self):
        # repro.analysis never imports the implementation, so the closed
        # forms restate the transport's constants; this is the drift alarm.
        assert DEFAULT_SUSPECT_AFTER == QuicConnection.LIVENESS_SUSPECT_AFTER
        assert DEFAULT_BACKOFF_CAP == QuicConnection.PTO_BACKOFF_EXPONENT_CAP
        assert DEFAULT_MAX_TIMEOUTS == QuicConnection.MAX_CONSECUTIVE_LOSS_TIMEOUTS

    def test_pto_fire_offsets_double_then_cap(self):
        # pto, then 2x, 4x, 8x, and capped at 2**3 = 8 probe intervals.
        offsets = pto_fire_offsets(0.1, 6, backoff_cap=3)
        intervals = [offsets[0]] + [b - a for a, b in zip(offsets, offsets[1:])]
        assert intervals == pytest.approx([0.1, 0.2, 0.4, 0.8, 0.8, 0.8])

    def test_suspect_latency_matches_transport_constants(self):
        # 3 x pto at the transport's default threshold of two PTOs.
        assert QuicConnection.LIVENESS_SUSPECT_AFTER == 2
        assert suspect_latency(0.1) == pytest.approx(0.3)

    def test_give_up_latency_is_bounded_by_the_backoff_cap(self):
        # 9 firings at the default max of 8 consecutive timeouts:
        # 1 + 2 + 4 + 8 + 8*5 = 55 probe intervals.
        assert give_up_latency(0.1) == pytest.approx(5.5)

    def test_rejects_nonsense_inputs(self):
        with pytest.raises(ValueError):
            pto_fire_offsets(0.0, 1)
        with pytest.raises(ValueError):
            pto_fire_offsets(0.1, 0)
        with pytest.raises(ValueError):
            DetectionModel(
                crashed_at=1.0, probe_timeout=0.1, next_send_at=None, idle_deadline=0.5
            )
        with pytest.raises(ValueError):
            DetectionModel(
                crashed_at=1.0, probe_timeout=0.1, next_send_at=0.5, idle_deadline=2.0
            )

    def test_path_selection_pto_vs_idle(self):
        # Keepalives soon + short suspect window: the PTO path wins.
        pto = DetectionModel(
            crashed_at=10.0, probe_timeout=0.1, next_send_at=10.2, idle_deadline=40.0
        )
        assert pto.path == "pto-suspect"
        assert pto.detection_latency == pytest.approx(0.2 + 0.3)
        # No sends ever: only the idle timer can fire.
        idle = DetectionModel(
            crashed_at=10.0, probe_timeout=0.1, next_send_at=None, idle_deadline=11.4
        )
        assert idle.path == "idle-timeout"
        assert idle.detection_latency == pytest.approx(1.4)
        # Keepalive scheduled after the idle deadline: idle fires first and
        # the PING never happens.
        late = DetectionModel(
            crashed_at=10.0, probe_timeout=0.1, next_send_at=11.5, idle_deadline=11.4
        )
        assert late.path == "idle-timeout"

    def test_sends_restart_the_idle_timer_in_the_model(self):
        # The crash-time idle deadline is NOT final on a keepalive'd
        # connection: the PING at +0.5 (and the retransmission at +0.6)
        # restart the idle timer, so despite idle_deadline < pto_suspect_at
        # the suspect transition at +0.8 is what actually fires.
        model = DetectionModel(
            crashed_at=10.0, probe_timeout=0.1, next_send_at=10.5,
            idle_deadline=10.6, idle_timeout=0.6,
        )
        assert model.path == "pto-suspect"
        assert model.detection_latency == pytest.approx(0.8)
        # A backoff gap longer than the idle timeout: idle expiry lands
        # inside it, before the suspect transition.
        gappy = DetectionModel(
            crashed_at=10.0, probe_timeout=0.1, next_send_at=10.5,
            idle_deadline=10.65, idle_timeout=0.15,
        )
        assert gappy.path == "idle-timeout"
        # Last restart at the +0.6 retransmission, expiry 0.15 later —
        # before the second PTO firing at +0.8.
        assert gappy.detection_latency == pytest.approx(0.75)

    def test_failover_latency_stacks_on_the_reattach_floor(self):
        model = DetectionModel(
            crashed_at=0.0, probe_timeout=0.1, next_send_at=0.2, idle_deadline=30.0
        )
        floor = recovery_model(0.010).reattach_latency
        assert model.failover_latency(0.010) == pytest.approx(0.5 + floor)
        alpn = model.failover_latency(0.010, alpn_version_negotiation=True)
        assert alpn == pytest.approx(0.5 + recovery_model(0.010, True).reattach_latency)


class TestFailureDetectionExperiment:
    def test_small_run_recovers_both_paths_in_band(self):
        result = run_failure_detection(
            subscribers=24, mid_relays=2, edge_per_mid=2,
            updates_before=2, updates_between=4, updates_after=4,
        )
        assert result.control_plane_kills == 0
        assert result.false_positive_events == 0
        assert result.gapless
        assert result.delivered_objects == result.expected_objects == 24 * 10
        assert [s.detected_via for s in result.samples] == [
            "pto-suspect", "idle-timeout",
        ]
        for sample in result.samples:
            assert sample.complete
            assert sample.detection_model_ok, (
                sample.detection_latency, sample.model_detection_latency,
            )
            assert sample.reattach_model_ok
        assert result.detection_model_ok and result.reattach_model_ok
        assert result.uplink_failures_detected >= 1
        # The recovery machinery did real work during the detection window.
        assert result.recovery_fetches + result.subscriber_gap_fetches > 0

    def test_detection_latency_tracks_the_idle_timeout_knob(self):
        short = run_failure_detection(
            subscribers=12, mid_relays=2, edge_per_mid=2,
            updates_before=2, updates_between=4, updates_after=4,
            subscriber_idle_timeout=1.0,
        )
        long = run_failure_detection(
            subscribers=12, mid_relays=2, edge_per_mid=2,
            updates_before=2, updates_between=4, updates_after=6,
            subscriber_idle_timeout=1.5,
        )
        short_idle = short.samples[1]
        long_idle = long.samples[1]
        assert short_idle.detected_via == long_idle.detected_via == "idle-timeout"
        assert short_idle.detection_latency < long_idle.detection_latency
        assert short.gapless and long.gapless

    def test_rows_and_summary_are_reportable(self):
        result = run_failure_detection(
            subscribers=12, mid_relays=2, edge_per_mid=2,
            updates_before=2, updates_between=4, updates_after=4,
        )
        rows = result.rows()
        assert rows, "one row per crash per orphan tier"
        for row in rows:
            assert row["detect_ms"] == row["detect_model_ms"]
            assert row["reattach_ms_mean"] == row["reattach_model_ms"]
            assert row["failover_ms_model"] == pytest.approx(
                row["detect_model_ms"] + row["reattach_model_ms"]
            )
        summary = result.summary_row()
        assert summary["control_plane_kills"] == 0
        assert summary["detection_ok"] and summary["reattach_ok"]
