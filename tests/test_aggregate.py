"""Dense-vs-aggregate equivalence canaries for the counted-leaf fan-out.

The aggregate-leaf representation (``repro.relaynet.aggregate``) claims
*exactness*: every statistic an experiment or collector reads from an
aggregate run — tier byte tables, origin egress, delivered objects, QUIC
and link totals, telemetry gauges, churn/detection/failover outputs — is
bit-identical to the dense run with the same seed.  These tests pin that
claim at 1k and 10k subscribers, across all four experiment batteries and
the telemetry scrape, and exercise materialise-on-demand (healthy splits
and leaf-death dissolution) directly at the topology layer.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.failure_detection import run_failure_detection
from repro.experiments.origin_failover import run_origin_failover
from repro.experiments.relay_churn import run_relay_churn
from repro.experiments.relay_fanout import (
    ORIGIN_HOST,
    ORIGIN_PORT,
    TRACK,
    UPDATE_INTERVAL,
    _update_payload,
    build_origin,
    run_relay_fanout,
)
from repro.moqt.objectmodel import MoqtObject
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.netsim.trace import NullTraceRecorder
from repro.relaynet import RelayTreeBuilder, RelayTreeSpec
from repro.telemetry import MetricsRegistry, SpanTracer, Telemetry

#: Sample fields intentionally *different* under aggregation: the whole
#: point is to collapse scheduled events and pooled allocations.
_COLLAPSED_FIELDS = {"events_scheduled", "pool_counters", "compactions"}


def _assert_dataclasses_equal(dense, aggregate, skip=()):
    for field in dataclasses.fields(dense):
        if field.name in skip:
            continue
        assert getattr(dense, field.name) == getattr(aggregate, field.name), (
            f"field {field.name!r} diverged between dense and aggregate runs"
        )


# --------------------------------------------------------------------- E11
@pytest.mark.parametrize("subscribers", [1000, 10_000])
def test_fanout_identity(subscribers):
    dense = run_relay_fanout(subscriber_counts=(subscribers,)).samples[0]
    aggregate = run_relay_fanout(
        subscriber_counts=(subscribers,), aggregate_leaves=True
    ).samples[0]
    _assert_dataclasses_equal(dense, aggregate, skip=_COLLAPSED_FIELDS)
    # The collapse is the reason the mode exists: events must not scale
    # with the counted population.
    assert aggregate.events_scheduled < dense.events_scheduled / 10


def test_fanout_telemetry_gauge_identity():
    """Every exported gauge matches, with span sampling active (stride 101)."""

    def scrape(aggregate_leaves):
        telemetry = Telemetry(
            metrics=MetricsRegistry(), spans=SpanTracer(subscriber_sample_every=101)
        )
        result = run_relay_fanout(
            subscriber_counts=(1000,),
            telemetry=telemetry,
            aggregate_leaves=aggregate_leaves,
        )
        flat = {}
        for instrument in telemetry.metrics.collect():
            for child in instrument.children():
                flat[(instrument.name, child.label_values)] = child.value
        return flat, result.samples[0].latency

    dense, dense_latency = scrape(False)
    aggregate, aggregate_latency = scrape(True)
    assert dense.keys() == aggregate.keys()
    for key, value in dense.items():
        if key[0].startswith(("sim_", "pool_")):
            continue  # scheduler/pool counters collapse by design
        if key[0] == "relaynet_pending_subscribe_high_water":
            # A transient in-flight quantity, not a multiplied-out statistic:
            # a counted leaf parks ONE awaiting-upstream SUBSCRIBE where the
            # dense attach sequence parks up to N, so the high-water collapses
            # with the event count, by design.
            continue
        assert aggregate[key] == value, f"gauge {key} diverged"
    assert dense_latency == aggregate_latency


# ---------------------------------------------------------------- E12/13/14
def test_churn_identity():
    dense = run_relay_churn()
    aggregate = run_relay_churn(aggregate_leaves=True)
    _assert_dataclasses_equal(dense, aggregate, skip={"kills", "events"})
    assert dense.kills == aggregate.kills
    assert aggregate.gapless


def test_failure_detection_identity():
    dense = run_failure_detection()
    aggregate = run_failure_detection(aggregate_leaves=True)
    _assert_dataclasses_equal(dense, aggregate, skip={"samples"})
    assert dense.samples == aggregate.samples


def test_origin_failover_identity():
    dense = run_origin_failover()
    aggregate = run_origin_failover(aggregate_leaves=True)
    _assert_dataclasses_equal(dense, aggregate, skip={"promotions", "events"})


# ---------------------------------------------------------- topology layer
def _build_tree(aggregate_leaves, subscribers=1000, seed=23):
    simulator = Simulator(seed=seed)
    network = Network(simulator, trace=NullTraceRecorder(simulator))
    publisher = build_origin(network)
    builder = RelayTreeBuilder(
        network, Address(ORIGIN_HOST, ORIGIN_PORT), aggregate_leaves=aggregate_leaves
    )
    tree = builder.build(RelayTreeSpec.cdn(mid_relays=4, edge_per_mid=4))
    tree.attach_subscribers(subscribers)
    return simulator, network, publisher, tree


def test_aggregate_attach_shape():
    simulator, _, _, tree = _build_tree(True)
    # 16 leaves, 1000 subscribers, no span sampling: one representative per
    # leaf stands in for the whole leaf population.
    assert len(tree.subscribers) == 16
    assert len(tree.aggregates) == 16
    assert tree.subscriber_population == 1000
    assert sum(sub.multiplicity for sub in tree.subscribers) == 1000
    assert all(not group.dissolved for group in tree.aggregates)


def test_dense_path_untouched():
    _, _, _, tree = _build_tree(False)
    assert tree.aggregates == []
    assert len(tree.subscribers) == 1000
    assert all(sub.multiplicity == 1 for sub in tree.subscribers)
    assert tree.subscriber_population == 1000


def test_leaf_kill_splits_exactly_the_affected_members():
    """An E12-style kill dissolves only the dead leaf's group.

    Exactly its members materialise (everyone else stays counted), delivery
    stays gapless for the whole population, and the re-attach latency of
    every materialised member equals the closed-form model.
    """
    simulator, _, publisher, tree = _build_tree(True)
    received: dict[int, list[int]] = {sub.index: [] for sub in tree.subscribers}
    tree.topology.on_subscriber_split = lambda member, rep: received.__setitem__(
        member.index, list(received[rep.index])
    )
    tree.subscribe_all(
        TRACK, on_object=lambda sub, obj: received[sub.index].append(obj.group_id)
    )
    simulator.run(until=simulator.now + 3.0)
    for group_id in (2, 3, 4):
        publisher.push(
            MoqtObject(group_id=group_id, object_id=0, payload=_update_payload(group_id, 300))
        )
        simulator.run(until=simulator.now + UPDATE_INTERVAL)

    victim = tree.tier("edge")[0]
    doomed = [g for g in tree.aggregates if g.representative.leaf is victim]
    assert len(doomed) == 1
    victim_members = list(doomed[0].member_indices)
    event = tree.kill_relay(victim)

    for group_id in (5, 6):
        publisher.push(
            MoqtObject(group_id=group_id, object_id=0, payload=_update_payload(group_id, 300))
        )
        simulator.run(until=simulator.now + UPDATE_INTERVAL)
    simulator.run(until=simulator.now + 5.0)

    # Exactly the dead leaf's group dissolved; every other group is intact.
    assert doomed[0].dissolved
    assert sum(1 for group in tree.aggregates if group.dissolved) == 1
    dense_now = {sub.index for sub in tree.subscribers if sub.multiplicity == 1}
    assert set(victim_members) <= dense_now
    assert tree.subscriber_population == 1000

    # Gapless delivery for the whole (expanded) population.
    from repro.relaynet import expand_member_sequences

    expanded = expand_member_sequences(tree.topology, received)
    assert len(expanded) == 1000
    assert all(groups == [2, 3, 4, 5, 6] for groups in expanded.values())

    # Re-attach latency of every materialised member equals the closed-form
    # model: three round trips on the subscriber access link.
    from repro.analysis.churn import recovery_model

    spec = tree.topology.spec
    model = recovery_model(
        spec.subscriber_link.delay, tree.session_config.alpn_version_negotiation
    )
    latencies = event.latencies_by_tier()["subscribers"]
    assert len(latencies) == len(victim_members)
    assert all(latency == pytest.approx(model.reattach_latency) for latency in latencies)


def test_healthy_split_preserves_delivery():
    """A mid-run manual split keeps the member's delivery sequence exact."""
    simulator, _, publisher, tree = _build_tree(True)
    received: dict[int, list[int]] = {sub.index: [] for sub in tree.subscribers}
    tree.topology.on_subscriber_split = lambda member, rep: received.__setitem__(
        member.index, list(received[rep.index])
    )
    tree.subscribe_all(
        TRACK, on_object=lambda sub, obj: received[sub.index].append(obj.group_id)
    )
    simulator.run(until=simulator.now + 3.0)
    for group_id in (2, 3):
        publisher.push(
            MoqtObject(group_id=group_id, object_id=0, payload=_update_payload(group_id, 300))
        )
        simulator.run(until=simulator.now + UPDATE_INTERVAL)

    group = tree.aggregates[0]
    target = group.member_indices[1]
    before = group.multiplicity
    member = tree.split_subscriber(target)
    assert member.index == target
    assert group.multiplicity == before - 1
    assert group.representative.multiplicity == before - 1
    simulator.run(until=simulator.now + 1.0)

    for group_id in (4, 5):
        publisher.push(
            MoqtObject(group_id=group_id, object_id=0, payload=_update_payload(group_id, 300))
        )
        simulator.run(until=simulator.now + UPDATE_INTERVAL)
    simulator.run(until=simulator.now + 3.0)

    # The member saw the pre-split history (inherited) plus everything after
    # over its own connection, without duplicates.
    assert received[target] == [2, 3, 4, 5]
    assert received[group.representative.index] == [2, 3, 4, 5]


def test_split_rejects_non_member():
    _, _, _, tree = _build_tree(True)
    with pytest.raises(ValueError):
        tree.split_subscriber(10**9)
    representative = tree.aggregates[0].representative
    with pytest.raises(ValueError):
        tree.aggregates[0].split(tree.topology, representative.index)
