"""Tests for the live relay topology: join/leave, failover, gap recovery.

Covers the livetree refactor end to end:

* membership — relays joining a running tree, graceful leaves, crashes;
* failover policies — sibling vs. grandparent re-homing;
* the MoQT-layer recovery contract — upstream-switch dedupe (no duplicate
  delivery after re-parenting) and FETCH-based gap fill, including the
  hypothesis property that arbitrary live/recovered interleavings with
  duplicates and reordering still yield a gapless, in-order sequence;
* load-aware subscriber placement skipping dead leaves;
* the unsubscribe-during-deferred-upstream-subscribe race;
* the pending-FETCH-over-a-dying-upstream regression (ROADMAP known issue);
* the close-during-switch race: a session closed while a recovery FETCH is
  in flight must not lose the gap for good;
* in-band failure detection — silent crashes recovered purely through
  QUIC liveness reports (:meth:`RelayTopology.report_failure`);
* the E12 churn experiment and the closed-form recovery model.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.churn import RecoveryModel, expected_gap_objects, recovery_model
from repro.experiments.relay_fanout import (
    ORIGIN_HOST as ORIGIN,
    ORIGIN_PORT,
    TRACK,
    OriginPublisher,
    build_origin,
)
from repro.moqt.objectmodel import Location, MoqtObject
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.relaynet import (
    GrandparentFailover,
    RelayTreeBuilder,
    RelayTreeSpec,
    SiblingFailover,
)


def build_scene(spec: RelayTreeSpec, seed: int = 5, failover_policy=None):
    """An origin publisher plus a built relay tree on a fresh network."""
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    publisher = build_origin(network)
    tree = RelayTreeBuilder(
        network, Address(ORIGIN, ORIGIN_PORT), failover_policy=failover_policy
    ).build(spec)
    return simulator, network, publisher, tree


def subscribe_recording(tree):
    """Subscribe every attached subscriber, recording delivered group ids."""
    received: dict[int, list[int]] = {sub.index: [] for sub in tree.subscribers}
    subscriptions = tree.subscribe_all(
        TRACK, on_object=lambda sub, obj: received[sub.index].append(obj.group_id)
    )
    return received, subscriptions


def push_groups(simulator, publisher: OriginPublisher, groups, interval: float = 0.25):
    for group in groups:
        publisher.push(MoqtObject(group_id=group, object_id=0, payload=f"v{group}".encode()))
        simulator.run(until=simulator.now + interval)


class TestMembership:
    def test_add_relay_joins_least_loaded_parent_and_serves(self):
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        simulator, _, publisher, tree = build_scene(spec)
        topology = tree.topology
        # Unbalance the mid tier: mid-0 gets an extra child first.
        extra0 = tree.add_relay("edge", parent=tree.tier("mid")[0])
        assert extra0.host.address == "relay-edge-4"
        joined = tree.add_relay("edge")
        assert joined.parent is tree.tier("mid")[1], "least-loaded mid chosen"
        assert joined.host.address == "relay-edge-5"
        assert topology.alive_relay_count == 8

        # The joined relay serves subscribers like any built one.
        tree.attach_subscribers(6)
        late = tree.subscribers[-1]
        received, _ = subscribe_recording(tree)
        simulator.run(until=simulator.now + 3.0)
        push_groups(simulator, publisher, [2, 3])
        simulator.run(until=simulator.now + 3.0)
        assert received[late.index] == [2, 3]
        assert joined.relay.statistics.upstream_subscribes >= 0  # reachable

    def test_add_relay_validates_tier_and_parent(self):
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        _, _, _, tree = build_scene(spec)
        with pytest.raises(KeyError):
            tree.add_relay("core")
        with pytest.raises(ValueError):
            tree.add_relay("mid", parent=tree.tier("mid")[0])
        dead = tree.tier("edge")[3]
        tree.kill_relay(dead)
        with pytest.raises(ValueError):
            tree.add_relay("edge", parent=dead)
        with pytest.raises(ValueError):
            tree.kill_relay(dead)  # already gone

    def test_remove_relay_graceful_leave_keeps_delivery_gapless(self):
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        simulator, _, publisher, tree = build_scene(spec)
        tree.attach_subscribers(8)
        received, _ = subscribe_recording(tree)
        simulator.run(until=simulator.now + 3.0)
        push_groups(simulator, publisher, [2, 3])
        event = tree.remove_relay(tree.tier("mid")[0])
        push_groups(simulator, publisher, [4, 5])
        simulator.run(until=simulator.now + 5.0)

        assert event.cause == "leave"
        assert event.complete
        assert all(groups == [2, 3, 4, 5] for groups in received.values())
        # The departed relay released its upstream state at the origin.
        mid0 = tree.tier("mid")[0]
        assert not mid0.alive
        assert all(
            child.parent is tree.tier("mid")[1] for child in tree.topology.children(
                tree.tier("mid")[1]
            )
        )


class TestFailover:
    def test_kill_mid_relay_sibling_failover_gapless_and_duplicate_free(self):
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        simulator, _, publisher, tree = build_scene(spec)
        tree.attach_subscribers(8)
        received, _ = subscribe_recording(tree)
        simulator.run(until=simulator.now + 3.0)
        push_groups(simulator, publisher, [2, 3, 4])
        event = tree.kill_relay(tree.tier("mid")[1])
        push_groups(simulator, publisher, [5, 6, 7])
        simulator.run(until=simulator.now + 5.0)

        assert event.cause == "kill"
        assert event.complete
        orphans = event.orphans("relay")
        assert {record.name for record in orphans} == {"relay-edge-1", "relay-edge-3"}
        assert all(record.new_parent == "relay-mid-0" for record in orphans)
        # The delivery contract survives the crash: gapless, ordered,
        # duplicate-free at every subscriber.
        assert all(groups == [2, 3, 4, 5, 6, 7] for groups in received.values())
        # Dedupe did real work: the new parent re-sent already-seen objects.
        switched = [tree.tier("edge")[1].relay, tree.tier("edge")[3].relay]
        assert all(relay.statistics.upstream_switches == 1 for relay in switched)
        assert sum(relay.statistics.duplicate_objects_dropped for relay in switched) > 0
        assert all(relay.statistics.recovery_fetches == 1 for relay in switched)

    def test_kill_recovers_gap_objects_via_fetch(self):
        # Stretch the re-attach window with a slow metro link so an update
        # pushed right at the kill must arrive via the recovery FETCH.
        from repro.netsim.link import LinkConfig

        spec = RelayTreeSpec.cdn(
            mid_relays=2, edge_per_mid=1, metro_link=LinkConfig(delay=0.080)
        )
        simulator, _, publisher, tree = build_scene(spec)
        tree.attach_subscribers(2)
        received, _ = subscribe_recording(tree)
        simulator.run(until=simulator.now + 5.0)
        push_groups(simulator, publisher, [2, 3])
        tree.kill_relay(tree.tier("mid")[1])
        # Published while the orphan edge is still re-attaching (3 RTTs of
        # 160 ms each): only the FETCH can deliver it.
        publisher.push(MoqtObject(group_id=4, object_id=0, payload=b"v4"))
        simulator.run(until=simulator.now + 10.0)

        assert all(groups == [2, 3, 4] for groups in received.values())
        orphan = tree.tier("edge")[1].relay
        assert orphan.statistics.recovered_objects >= 1

    def test_back_to_back_kills_do_not_clobber_recovery(self):
        # Second failover arrives while the first recovery FETCH is still in
        # flight (slow metro link): the stale fetch failing on the old
        # session's close must not release the new switch's buffer early.
        from repro.netsim.link import LinkConfig

        spec = RelayTreeSpec.cdn(
            mid_relays=3, edge_per_mid=1, metro_link=LinkConfig(delay=0.080)
        )
        simulator, _, publisher, tree = build_scene(spec)
        tree.attach_subscribers(3)
        received, _ = subscribe_recording(tree)
        simulator.run(until=simulator.now + 5.0)
        push_groups(simulator, publisher, [2, 3])
        tree.kill_relay(tree.tier("mid")[1])
        publisher.push(MoqtObject(group_id=4, object_id=0, payload=b"v4"))
        # Kill the failover target before the orphan's recovery completes
        # (re-attach alone takes 3 x 160 ms RTTs).
        simulator.run(until=simulator.now + 0.1)
        tree.kill_relay(tree.tier("mid")[0])
        publisher.push(MoqtObject(group_id=5, object_id=0, payload=b"v5"))
        simulator.run(until=simulator.now + 15.0)
        push_groups(simulator, publisher, [6])
        simulator.run(until=simulator.now + 10.0)

        for groups in received.values():
            assert groups == [2, 3, 4, 5, 6], received

    def test_second_switch_without_resume_does_not_wedge_the_buffer(self):
        # A switch that arms recovery followed immediately by one that has
        # no gap FETCH to issue (recover=False) must release the buffer:
        # nothing else ever would, and the track would swallow live objects
        # forever.
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=1)
        simulator, _, publisher, tree = build_scene(spec)
        tree.attach_subscribers(2)
        received, _ = subscribe_recording(tree)
        simulator.run(until=simulator.now + 3.0)
        push_groups(simulator, publisher, [2, 3])
        edge0 = tree.tier("edge")[0]
        mids = tree.tier("mid")
        edge0.relay.switch_upstream(mids[1].address, recover=True)
        edge0.relay.switch_upstream(mids[0].address, recover=False)
        push_groups(simulator, publisher, [4, 5])
        simulator.run(until=simulator.now + 5.0)

        track = edge0.relay.tracks()[TRACK]
        assert not track.recovery.active
        assert track.recovery.buffered == []
        behind_edge0 = [sub.index for sub in tree.subscribers if sub.leaf is edge0]
        for index in behind_edge0:
            # Group 4 rode out during the unrecovered switch window (that
            # loss is what recover=True's FETCH exists for); what must not
            # happen is the buffer swallowing the live stream afterwards.
            assert received[index] == [2, 3, 5], "live delivery resumed"

    def test_kill_with_trackless_child_relay_still_completes(self):
        # A freshly joined (lazy, track-less) relay orphaned by its parent's
        # death has no SUBSCRIBE_OK to wait for; the event must not hang on
        # it forever.
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=1)
        simulator, _, _, tree = build_scene(spec)
        idle = tree.add_relay("edge", parent=tree.tier("mid")[0])
        simulator.run(until=simulator.now + 2.0)
        event = tree.kill_relay(tree.tier("mid")[0])
        simulator.run(until=simulator.now + 3.0)
        assert idle.parent is tree.tier("mid")[1]
        assert event.complete

    def test_kill_last_leaf_records_stranded_orphans_without_raising(self):
        spec = RelayTreeSpec.cdn(mid_relays=1, edge_per_mid=1)
        simulator, _, _, tree = build_scene(spec)
        tree.attach_subscribers(2)
        subscribe_recording(tree)
        simulator.run(until=simulator.now + 3.0)
        event = tree.kill_relay(tree.tier("edge")[0])  # must not raise
        simulator.run(until=simulator.now + 3.0)
        stranded = event.orphans("subscriber")
        assert len(stranded) == 2
        assert all(record.reattached_at is None for record in stranded)
        assert not event.complete
        assert tree.topology.events[-1] is event

    def test_kill_with_unsubscribed_orphans_still_completes(self):
        # Subscribers whose sessions exist but hold no live subscriptions
        # re-home with nothing to restore; the failover must still read
        # complete instead of waiting on a SUBSCRIBE_OK that never comes.
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        simulator, _, _, tree = build_scene(spec)
        tree.attach_subscribers(4)
        simulator.run(until=simulator.now + 2.0)
        event = tree.kill_relay(tree.tier("edge")[0])
        simulator.run(until=simulator.now + 3.0)
        assert event.orphans("subscriber")
        assert event.complete

    def test_grandparent_policy_reattaches_to_origin(self):
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        simulator, _, publisher, tree = build_scene(
            spec, failover_policy=GrandparentFailover()
        )
        tree.attach_subscribers(4)
        received, _ = subscribe_recording(tree)
        simulator.run(until=simulator.now + 3.0)
        push_groups(simulator, publisher, [2])
        event = tree.kill_relay(tree.tier("mid")[0])
        push_groups(simulator, publisher, [3, 4])
        simulator.run(until=simulator.now + 5.0)

        # Mid-0's edges now subscribe directly at the origin.
        for record in event.orphans("relay"):
            assert record.new_parent == ORIGIN
        for index in (0, 2):
            assert tree.tier("edge")[index].relay.upstream_address.host == ORIGIN
            assert tree.tier("edge")[index].parent is None
        assert all(groups == [2, 3, 4] for groups in received.values())

    def test_kill_edge_relay_reattaches_subscribers_to_surviving_leaves(self):
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        simulator, _, publisher, tree = build_scene(spec)
        tree.attach_subscribers(8)
        received, _ = subscribe_recording(tree)
        simulator.run(until=simulator.now + 3.0)
        push_groups(simulator, publisher, [2, 3])
        edge0 = tree.tier("edge")[0]
        orphaned = [sub for sub in tree.subscribers if sub.leaf is edge0]
        event = tree.kill_relay(edge0)
        push_groups(simulator, publisher, [4, 5])
        simulator.run(until=simulator.now + 5.0)

        assert event.complete
        assert {record.name for record in event.orphans("subscriber")} == {
            sub.host.address for sub in orphaned
        }
        assert all(groups == [2, 3, 4, 5] for groups in received.values())
        for subscriber in orphaned:
            assert subscriber.leaf is not edge0 and subscriber.leaf.alive
            assert subscriber.reattach_count == 1
            assert subscriber.gap_fetches == 1
            assert subscriber.duplicates_dropped > 0, "gap FETCH overlap deduped"

    def test_reattach_latency_matches_recovery_model(self):
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        simulator, _, publisher, tree = build_scene(spec)
        tree.attach_subscribers(4)
        subscribe_recording(tree)
        simulator.run(until=simulator.now + 3.0)
        push_groups(simulator, publisher, [2])
        event = tree.kill_relay(tree.tier("mid")[1])
        simulator.run(until=simulator.now + 3.0)

        latencies = event.latencies_by_tier()["edge"]
        model = recovery_model(spec.tiers[1].uplink.delay)
        assert latencies == pytest.approx([model.reattach_latency] * len(latencies))

    def test_stats_collection_survives_churn(self):
        from repro.relaynet import RelayNetStats

        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        simulator, _, publisher, tree = build_scene(spec)
        tree.attach_subscribers(4)
        subscribe_recording(tree)
        simulator.run(until=simulator.now + 3.0)
        tree.kill_relay(tree.tier("mid")[0])
        push_groups(simulator, publisher, [2])
        simulator.run(until=simulator.now + 3.0)
        stats = RelayNetStats.collect(tree)
        assert stats.subscriber_objects_received >= 4


class TestPlacement:
    def test_subscribers_avoid_dead_leaves(self):
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        simulator, _, _, tree = build_scene(spec)
        tree.attach_subscribers(4)
        assert [sub.leaf.index for sub in tree.subscribers] == [0, 1, 2, 3]
        tree.kill_relay(tree.tier("edge")[1])
        simulator.run(until=simulator.now + 2.0)
        more = tree.attach_subscribers(3)
        assert all(sub.leaf.index != 1 for sub in more)
        # Least-loaded: the reattached orphan made one survivor heavier.
        loads = {node.index: node.load for node in tree.tier("edge") if node.alive}
        assert max(loads.values()) - min(loads.values()) <= 1

    def test_least_loaded_placement_balances_after_join(self):
        spec = RelayTreeSpec.star(relays=2)
        _, _, _, tree = build_scene(spec)
        tree.attach_subscribers(4)
        joined = tree.add_relay(0)
        late = tree.attach_subscribers(3)
        # The empty joiner soaks up new subscribers until loads level out.
        assert [sub.leaf is joined for sub in late] == [True, True, False]


class TestRaces:
    def test_unsubscribe_during_deferred_upstream_subscribe(self):
        spec = RelayTreeSpec.star(relays=1)
        simulator, _, publisher, tree = build_scene(spec)
        (subscriber,) = tree.attach_subscribers(1)
        subscription = subscriber.session.subscribe(TRACK)
        # The unsubscribe chases the subscribe down the control stream and
        # arrives while the relay's upstream subscription is still pending.
        subscriber.session.unsubscribe(subscription)
        simulator.run(until=simulator.now + 3.0)

        relay = tree.tiers[0][0].relay
        track = relay.tracks()[TRACK]
        assert track.downstream == []
        assert track.awaiting_upstream == []
        assert track.upstream_subscription is None
        assert relay.statistics.upstream_unsubscribes == 1
        assert publisher.sessions[0].publisher_subscriptions() == []
        assert subscription.state == "done", "never resurrected by the late answer"

        # The track is retryable: a fresh subscriber re-establishes the chain.
        (fresh,) = tree.attach_subscribers(1)
        states = []
        fresh.session.subscribe(TRACK, on_response=lambda s: states.append(s.state))
        simulator.run(until=simulator.now + 3.0)
        assert states == ["active"]
        assert relay.statistics.upstream_subscribes == 2

    def test_pending_fetch_over_dying_upstream_fails_downstream(self):
        # ROADMAP known issue: the origin host exists but nothing listens,
        # so the relay's upstream session dies after its bounded retries
        # with the forwarded FETCH still pending.  The downstream fetch must
        # complete with an error instead of hanging forever.
        simulator = Simulator(seed=19)
        network = Network(simulator)
        network.add_host(ORIGIN)
        tree = RelayTreeBuilder(network, Address(ORIGIN, ORIGIN_PORT)).build(
            RelayTreeSpec.star(relays=1)
        )
        (subscriber,) = tree.attach_subscribers(1)
        fetched = []
        subscriber.session.fetch(
            TRACK, Location(0, 0), Location(1 << 20, 0), on_complete=fetched.append
        )
        simulator.run(until=simulator.now + 120.0)

        assert fetched, "the forwarded fetch completed instead of hanging"
        assert fetched[0].state == "error"
        assert not fetched[0].succeeded

    def test_session_close_fails_its_pending_fetches(self):
        spec = RelayTreeSpec.star(relays=1)
        simulator, _, publisher, tree = build_scene(spec)
        (subscriber,) = tree.attach_subscribers(1)
        fetched = []
        subscriber.session.fetch(
            TRACK, Location(0, 0), Location(1 << 20, 0), on_complete=fetched.append
        )
        # Close before the answer can arrive: the local session must error
        # the fetch immediately.
        subscriber.session.close("going away")
        assert fetched and fetched[0].state == "error"
        simulator.run(until=simulator.now + 2.0)
        assert len(fetched) == 1, "no double completion"


class TestDedupeRecoveryProperty:
    """Hypothesis property: per-track (group, object) dedupe + RecoveryBuffer.

    Models exactly what a re-attached subscriber's track goes through: some
    objects delivered before the failure, a gap FETCH answering with an
    overlapping prefix (possibly shuffled — the buffer sorts), and the new
    parent's live stream (buffered while the fetch is outstanding) carrying
    reordered duplicates of recovered territory.  Whatever the interleaving,
    the application must observe every group exactly once, in order, with
    no gaps.
    """

    @staticmethod
    def _track_harness():
        from repro.relaynet.topology import TreeSubscriber, _SubscriberTrack

        delivered: list[int] = []
        track = _SubscriberTrack(
            full_track_name=TRACK, on_object=lambda obj: delivered.append(obj.group_id)
        )
        subscriber = TreeSubscriber.__new__(TreeSubscriber)
        subscriber.index = 0
        subscriber.host = None
        subscriber.session = None
        subscriber.leaf = None
        subscriber.config = None
        subscriber.tracks = [track]
        subscriber.reattach_count = 0
        subscriber.gap_fetches = 0
        return subscriber, track, delivered

    @staticmethod
    def _obj(group: int) -> MoqtObject:
        return MoqtObject(group_id=group, object_id=0, payload=b"x")

    @given(
        total=st.integers(min_value=1, max_value=30),
        pre=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_any_interleaving_yields_gapless_in_order_delivery(self, total, pre):
        groups = list(range(2, 2 + total))
        # Delivered live before the failure: an in-order prefix.
        delivered_before = pre.draw(
            st.integers(min_value=0, max_value=total), label="delivered_before"
        )
        # The gap FETCH answers everything from the resume point (inclusive
        # overlap) up to some point, in arbitrary order with duplicates.
        fetch_end = pre.draw(
            st.integers(min_value=delivered_before, max_value=total), label="fetch_end"
        )
        fetch_start = max(0, delivered_before - 1)
        fetch_groups = pre.draw(
            st.permutations(groups[fetch_start:fetch_end]), label="fetch_order"
        )
        # The live stream from the new parent: everything past the fetch,
        # plus reordered duplicates of recovered/pre-failure territory.
        live_tail = groups[fetch_end:]
        duplicates = pre.draw(
            st.lists(st.sampled_from(groups[:fetch_end] or [2]), max_size=8),
            label="duplicates",
        ) if fetch_end else []
        live_groups = pre.draw(
            st.permutations(live_tail + duplicates), label="live_order"
        )

        subscriber, track, delivered = self._track_harness()
        for group in groups[:delivered_before]:
            subscriber.deliver(track, self._obj(group))
        assert delivered == groups[:delivered_before]

        # Failure: the buffer arms, live objects are intercepted while the
        # gap FETCH is outstanding.
        track.recovery.arm()
        for group in live_groups:
            subscriber.deliver(track, self._obj(group))
        assert delivered == groups[:delivered_before], "armed buffer holds the live stream"

        class _Fetch:
            succeeded = True
            objects = [self._obj(group) for group in fetch_groups]

        subscriber.finish_gap_fetch(track, _Fetch())
        assert delivered == groups, (
            "gapless, duplicate-free, in publish order across the failure"
        )
        assert not track.recovery.active and track.recovery.buffered == []
        assert track.delivered == total


class TestCloseDuringSwitchRace:
    """A session closed mid-switch must not strand or lose the recovery gap."""

    def _scene_with_inflight_recovery(self):
        """Edge-1 mid-recovery: armed buffer, gap FETCH in flight, a live
        object buffered, and a genuine gap object (group 4) only the FETCH
        can deliver."""
        from repro.netsim.link import LinkConfig

        spec = RelayTreeSpec.cdn(
            mid_relays=3, edge_per_mid=1, metro_link=LinkConfig(delay=0.080)
        )
        simulator, _, publisher, tree = build_scene(spec)
        tree.attach_subscribers(3)
        received, _ = subscribe_recording(tree)
        simulator.run(until=simulator.now + 5.0)
        push_groups(simulator, publisher, [2, 3])
        edge1 = tree.tier("edge")[1]
        tree.kill_relay(tree.tier("mid")[1])
        kill_at = simulator.now
        # Gap object: forwarded by the new parent before edge-1's SUBSCRIBE
        # lands, so only the recovery FETCH can deliver it.
        publisher.push(MoqtObject(group_id=4, object_id=0, payload=b"v4"))
        simulator.run(until=kill_at + 0.42)
        # Live object: arrives while the FETCH is outstanding -> buffered.
        publisher.push(MoqtObject(group_id=5, object_id=0, payload=b"v5"))
        simulator.run(until=kill_at + 0.55)
        upstream = edge1.relay.upstream_session
        assert any(f.state == "pending" for f in upstream._fetches.values()), (
            "recovery FETCH still in flight"
        )
        track = edge1.relay.tracks()[TRACK]
        assert track.recovery.active and track.recovery.buffered
        return simulator, publisher, tree, edge1, received, upstream

    def test_close_then_switch_refetches_the_gap(self):
        simulator, publisher, tree, edge1, received, upstream = (
            self._scene_with_inflight_recovery()
        )
        # The race: the uplink session closes while the gap FETCH is in
        # flight.  The armed buffer must be carried, not flushed — flushing
        # would advance the dedupe high-water mark past the unrecovered gap.
        upstream.close("operator close mid-recovery")
        simulator.run(until=simulator.now + 1.0)
        edge1.relay.switch_upstream(tree.tier("mid")[2].address, recover=True)
        push_groups(simulator, publisher, [6])
        simulator.run(until=simulator.now + 5.0)
        behind = [sub.index for sub in tree.subscribers if sub.leaf is edge1]
        for index in behind:
            assert received[index] == [2, 3, 4, 5, 6], "gap 4 recovered after the race"

    def test_close_then_fresh_subscriber_refetches_the_gap(self):
        # Same race, but recovery is re-entered by the next downstream
        # SUBSCRIBE instead of an explicit switch: the first subscriber for
        # a track whose carried buffer is still armed must go through the
        # recovery path, not a plain re-subscribe.
        simulator, publisher, tree, edge1, received, upstream = (
            self._scene_with_inflight_recovery()
        )
        upstream.close("operator close mid-recovery")
        simulator.run(until=simulator.now + 1.0)
        track = edge1.relay.tracks()[TRACK]
        assert track.recovery.active, "buffer carried across the close"
        assert track.upstream_subscription is None
        # Re-point the uplink without recovery side effects, then let a new
        # downstream SUBSCRIBE on the same leaf re-establish the chain.
        edge1.relay.upstream_address = tree.tier("mid")[2].address
        behind = [sub for sub in tree.subscribers if sub.leaf is edge1]
        seen = []
        behind[0].session.subscribe(TRACK, on_object=lambda obj: seen.append(obj.group_id))
        push_groups(simulator, publisher, [6])
        simulator.run(until=simulator.now + 5.0)
        for subscriber in behind:
            assert received[subscriber.index] == [2, 3, 4, 5, 6], (
                "gap healed by the fresh subscribe"
            )
        assert not track.recovery.active

    def test_subscriber_reattach_after_failed_gap_fetch_keeps_order(self):
        # Subscriber-side variant: a pending gap FETCH dies with its session
        # when the subscriber's leaf is killed again.  The buffered live
        # objects must not be released ahead of the next re-attach's FETCH,
        # or the lost gap would be skipped forever.
        from repro.netsim.link import LinkConfig

        spec = RelayTreeSpec.cdn(
            mid_relays=1, edge_per_mid=3, metro_link=LinkConfig(delay=0.010),
            access_link=LinkConfig(delay=0.080),
        )
        simulator, _, publisher, tree = build_scene(spec)
        tree.attach_subscribers(3)
        received, _ = subscribe_recording(tree)
        simulator.run(until=simulator.now + 5.0)
        push_groups(simulator, publisher, [2, 3])
        victim = tree.subscribers[0]
        first_leaf = victim.leaf
        tree.kill_relay(first_leaf)
        kill_at = simulator.now
        publisher.push(MoqtObject(group_id=4, object_id=0, payload=b"v4"))
        simulator.run(until=kill_at + 0.42)
        publisher.push(MoqtObject(group_id=5, object_id=0, payload=b"v5"))
        simulator.run(until=kill_at + 0.55)
        # Second kill while the victim's gap FETCH is still in flight.
        tree.kill_relay(victim.leaf)
        push_groups(simulator, publisher, [6])
        simulator.run(until=simulator.now + 10.0)
        assert received[victim.index] == [2, 3, 4, 5, 6], received[victim.index]


class TestInBandDetection:
    """Silent crashes recovered purely through QUIC liveness reports."""

    def _detection_scene(self):
        from repro.quic.connection import ConnectionConfig
        from repro.relaynet.topology import RelayTopology
        from repro.moqt.relay import MOQT_ALPN

        simulator = Simulator(seed=31)
        network = Network(simulator)
        publisher = build_origin(network)
        topology = RelayTopology(
            network,
            Address(ORIGIN, ORIGIN_PORT),
            RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2),
            uplink_connection=ConnectionConfig(
                alpn_protocols=(MOQT_ALPN,), keepalive_interval=0.5
            ),
            subscriber_connection=ConnectionConfig(
                alpn_protocols=(MOQT_ALPN,), idle_timeout=1.5
            ),
        )
        topology.attach_subscribers(8)
        received = {sub.index: [] for sub in topology.subscribers}
        topology.subscribe_all(
            TRACK, on_object=lambda sub, obj: received[sub.index].append(obj.group_id)
        )
        simulator.run(until=simulator.now + 1.0)
        return simulator, publisher, topology, received

    def test_crash_relay_is_silent_until_reported(self):
        simulator, publisher, topology, received = self._detection_scene()
        push_groups(simulator, publisher, [2])
        victim = topology.tier("mid")[1]
        topology.crash_relay(victim)
        assert victim.alive, "the controller does not know yet"
        assert topology.events == []
        with pytest.raises(ValueError):
            topology.crash_relay(victim)  # already crashed

    def test_mid_crash_detected_via_pto_suspect_and_recovered(self):
        simulator, publisher, topology, received = self._detection_scene()
        push_groups(simulator, publisher, [2, 3])
        victim = topology.tier("mid")[1]
        crashed_at = simulator.now
        topology.crash_relay(victim)
        push_groups(simulator, publisher, [4, 5, 6])
        simulator.run(until=simulator.now + 0.5)

        assert len(topology.events) == 1
        event = topology.events[0]
        assert event.cause == "detected"
        assert event.detected_via == "pto-suspect"
        assert event.node == victim.host.address
        assert not victim.alive
        assert event.detection_latency is not None
        assert 0 < event.detection_latency < 1.0
        assert event.complete
        assert all(groups == [2, 3, 4, 5, 6] for groups in received.values())
        orphans = {record.name for record in event.orphans("relay")}
        assert orphans == {"relay-edge-1", "relay-edge-3"}

    def test_edge_crash_detected_via_subscriber_idle_timeout(self):
        simulator, publisher, topology, received = self._detection_scene()
        push_groups(simulator, publisher, [2, 3])
        victim = topology.tier("edge")[0]
        orphaned = [sub for sub in topology.subscribers if sub.leaf is victim]
        idle_deadline = orphaned[0].session.connection.idle_deadline
        crashed_at = simulator.now
        topology.crash_relay(victim)
        push_groups(simulator, publisher, [4, 5, 6, 7, 8, 9])
        simulator.run(until=simulator.now + 0.6)

        assert len(topology.events) == 1
        event = topology.events[0]
        assert event.cause == "detected" and event.detected_via == "idle-timeout"
        assert event.detection_latency == pytest.approx(idle_deadline - crashed_at)
        assert event.complete
        for subscriber in orphaned:
            assert subscriber.leaf is not victim and subscriber.leaf.alive
            assert received[subscriber.index] == [2, 3, 4, 5, 6, 7, 8, 9]

    def test_pending_subscribe_is_transplanted_across_a_silent_crash(self):
        # A SUBSCRIBE caught between the downstream request and the upstream
        # answer when the parent silently dies must be re-issued through the
        # new parent and answered ok — not errored back (ROADMAP follow-on).
        from repro.netsim.link import LinkConfig
        from repro.quic.connection import ConnectionConfig
        from repro.relaynet.topology import RelayTopology
        from repro.moqt.relay import MOQT_ALPN

        simulator = Simulator(seed=37)
        network = Network(simulator)
        publisher = build_origin(network)
        topology = RelayTopology(
            network,
            Address(ORIGIN, ORIGIN_PORT),
            RelayTreeSpec.cdn(
                mid_relays=2, edge_per_mid=1, metro_link=LinkConfig(delay=0.040)
            ),
            uplink_connection=ConnectionConfig(
                alpn_protocols=(MOQT_ALPN,), keepalive_interval=0.25
            ),
        )
        # Warm the uplink transports (keepalives running, RTT estimated)
        # without subscribing anything yet.
        (warm,) = topology.attach_subscribers(1)
        simulator.run(until=simulator.now + 2.0)
        # Subscribe through edge-1 and crash its parent before the deferred
        # upstream SUBSCRIBE can be answered (metro RTT is 80 ms).
        (late,) = topology.attach_subscribers(1)
        assert late.leaf.parent is topology.tier("mid")[1]
        simulator.run(until=simulator.now + 1.0)
        states = []
        late.session.subscribe(TRACK, on_response=lambda s: states.append(s.state))
        simulator.run(until=simulator.now + 0.05)  # request reached the edge relay
        track = late.leaf.relay.tracks()[TRACK]
        assert track.awaiting_upstream, "upstream answer still outstanding"
        topology.crash_relay(late.leaf.parent)
        simulator.run(until=simulator.now + 5.0)
        assert states == ["active"], "transplanted through the new parent, not errored"
        assert len(topology.events) == 1 and topology.events[0].cause == "detected"

    def test_report_failure_is_idempotent_and_origin_orphans_are_ignored(self):
        simulator, publisher, topology, received = self._detection_scene()
        push_groups(simulator, publisher, [2])
        victim = topology.tier("mid")[1]
        topology.crash_relay(victim)
        first = topology.report_failure(victim, via="pto-suspect")
        second = topology.report_failure(victim, via="idle-timeout")
        assert first is not None and second is first
        assert first.detected_via == "pto-suspect", "first reporter wins"
        assert topology.events == [first]
        # A liveness signal from a relay hanging directly off the origin has
        # no parent to fail away from: the wired handler must no-op.
        mid0 = topology.tier("mid")[0]
        topology._on_relay_uplink_dying(mid0.relay, "pto-suspect")
        assert topology.events == [first]
        assert mid0.alive


class TestChurnExperimentAndModel:
    def test_recovery_model_closed_forms(self):
        model = recovery_model(0.010)
        assert model.rtt == pytest.approx(0.020)
        assert model.reattach_round_trips == 3
        assert model.reattach_latency == pytest.approx(0.060)
        assert model.gap_fill_latency() == pytest.approx(0.080)
        assert model.gap_fill_latency(upstream_rtt=0.040) == pytest.approx(0.120)
        alpn = RecoveryModel(link_delay=0.010, alpn_version_negotiation=True)
        assert alpn.reattach_round_trips == 2
        assert expected_gap_objects(0.06, 0.25) == 1
        assert expected_gap_objects(0.0, 0.25) == 0
        with pytest.raises(ValueError):
            recovery_model(-1.0)
        with pytest.raises(ValueError):
            expected_gap_objects(1.0, 0.0)

    def test_relay_churn_experiment_small(self):
        from repro.experiments.relay_churn import run_relay_churn

        result = run_relay_churn(
            subscribers=24,
            mid_relays=2,
            edge_per_mid=2,
            updates_before=2,
            updates_between=2,
            updates_after=2,
        )
        assert result.gapless
        assert result.delivered_objects == result.expected_objects == 24 * 6
        assert len(result.kills) == 2
        for kill in result.kills:
            assert kill.complete
            for row in kill.rows():
                assert row["reattach_ms_mean"] == row["model_ms"]
        assert result.recovery_fetches > 0

    @pytest.mark.slow
    def test_relay_churn_experiment_is_deterministic(self):
        from repro.experiments.relay_churn import run_relay_churn

        kwargs = dict(
            subscribers=40, mid_relays=2, edge_per_mid=2,
            updates_before=2, updates_between=2, updates_after=2,
        )
        first = run_relay_churn(**kwargs)
        second = run_relay_churn(**kwargs)
        assert first.summary_row() == second.summary_row()
        assert first.rows() == second.rows()
