"""Tests for repro.relaynet: specs, builders, chained relays and statistics."""

from __future__ import annotations

import pytest

from repro.analysis.fanout import fanout_model, relative_deviation, unicast_origin_messages
from repro.experiments.relay_fanout import (
    ORIGIN_HOST as ORIGIN,
    ORIGIN_PORT,
    TRACK,
    OriginPublisher as BaseOriginPublisher,
    build_origin,
)
from repro.moqt.objectmodel import MoqtObject
from repro.netsim.link import LinkConfig
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.relaynet import (
    RelayNetStats,
    RelayTierSpec,
    RelayTreeBuilder,
    RelayTreeSpec,
)


class OriginPublisher(BaseOriginPublisher):
    """Origin delegate recording every subscribe/fetch it answers."""

    def __init__(self) -> None:
        super().__init__()
        self.subscribes: list[object] = []
        self.fetches: list[object] = []

    def handle_subscribe(self, session, message):
        self.subscribes.append(message)
        return super().handle_subscribe(session, message)

    def handle_fetch(self, session, message, full_track_name):
        self.fetches.append(message)
        return super().handle_fetch(session, message, full_track_name)

    def push_version(self, group_id: int, payload: bytes) -> MoqtObject:
        obj = MoqtObject(group_id=group_id, object_id=0, payload=payload)
        self.push(obj)
        return obj


def build_scene(spec: RelayTreeSpec, seed: int = 5):
    """An origin publisher plus a built relay tree on a fresh network."""
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    publisher = build_origin(network, OriginPublisher())
    tree = RelayTreeBuilder(network, Address(ORIGIN, ORIGIN_PORT)).build(spec)
    return simulator, network, publisher, tree


class TestSpec:
    def test_star_kary_and_cdn_shapes(self):
        assert RelayTreeSpec.star(3).tier_sizes() == (3,)
        assert RelayTreeSpec.kary(depth=2, branching=3).tier_sizes() == (3, 9)
        assert RelayTreeSpec.cdn(mid_relays=4, edge_per_mid=4).tier_sizes() == (4, 16)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            RelayTierSpec("mid", 0)
        with pytest.raises(ValueError):
            RelayTreeSpec(tiers=())
        with pytest.raises(ValueError):
            RelayTreeSpec(tiers=(RelayTierSpec("a", 1), RelayTierSpec("a", 2)))
        with pytest.raises(ValueError):
            RelayTreeSpec.kary(depth=0, branching=2)

    def test_tier_uplink_configs_are_kept(self):
        spec = RelayTreeSpec.cdn(core_link=LinkConfig(delay=0.2), metro_link=LinkConfig(delay=0.1))
        assert spec.tiers[0].uplink.delay == 0.2
        assert spec.tiers[1].uplink.delay == 0.1


class TestBuilder:
    def test_builds_hosts_relays_and_round_robin_parents(self):
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        _, network, _, tree = build_scene(spec)
        assert tree.relay_count == 6
        assert [node.host.address for node in tree.tier("mid")] == [
            "relay-mid-0", "relay-mid-1",
        ]
        edges = tree.tier("edge")
        assert [edge.parent.index for edge in edges] == [0, 1, 0, 1]
        for mid in tree.tier("mid"):
            assert mid.parent is None
            assert mid.upstream_host == ORIGIN
            assert network.has_link(ORIGIN, mid.host.address)
        for edge in edges:
            assert edge.relay.tier == "edge"
            assert network.has_link(edge.parent.host.address, edge.host.address)

    def test_origin_host_must_exist(self):
        network = Network(Simulator(seed=1))
        with pytest.raises(Exception):
            RelayTreeBuilder(network, Address("missing", ORIGIN_PORT))

    def test_attach_subscribers_round_robin_and_incremental(self):
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        _, _, _, tree = build_scene(spec)
        first = tree.attach_subscribers(5)
        assert [sub.leaf.index for sub in first] == [0, 1, 2, 3, 0]
        second = tree.attach_subscribers(2)
        assert [sub.host.address for sub in second] == ["sub-5", "sub-6"]
        assert len(tree.subscribers) == 7


class TestChainedDelivery:
    def test_three_tier_tree_delivers_every_update_in_order(self):
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        simulator, _, publisher, tree = build_scene(spec)
        tree.attach_subscribers(8)
        received: dict[int, list[int]] = {sub.index: [] for sub in tree.subscribers}
        tree.subscribe_all(
            TRACK, on_object=lambda sub, obj: received[sub.index].append(obj.group_id)
        )
        simulator.run(until=simulator.now + 3.0)
        for group in range(2, 7):
            publisher.push_version(group, f"v{group}".encode())
            simulator.run(until=simulator.now + 0.5)
        simulator.run(until=simulator.now + 3.0)

        for groups in received.values():
            assert groups == [2, 3, 4, 5, 6], "every subscriber sees updates in publish order"
        # Aggregation: each tier holds exactly one upstream subscription per
        # active relay, and the origin only ever answered the mid tier.
        stats = RelayNetStats.collect(tree)
        assert stats.tiers[0].upstream_subscribes == 2
        assert stats.tiers[1].upstream_subscribes == 4
        assert len(publisher.subscribes) == 2
        assert stats.tiers[0].objects_received == 2 * 5
        assert stats.tiers[1].objects_received == 4 * 5
        assert stats.subscriber_objects_received == 8 * 5

    def test_fetch_forwarded_to_origin_on_cold_tree(self):
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        simulator, _, publisher, tree = build_scene(spec)
        (subscriber,) = tree.attach_subscribers(1)
        fetched = []
        subscription = subscriber.session.subscribe(TRACK)
        subscriber.session.joining_fetch(subscription, 1, on_complete=fetched.append)
        simulator.run(until=simulator.now + 4.0)
        assert fetched and fetched[0].succeeded
        assert [obj.payload for obj in fetched[0].objects] == [b"v1"]
        # Cold caches at the edge and mid tier: both forwarded upstream and
        # the fetch reached the origin exactly once.
        stats = RelayNetStats.collect(tree)
        assert stats.cache_misses == 2
        assert len(publisher.fetches) == 1

    def test_fetch_served_from_mid_tier_cache_without_reaching_origin(self):
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        simulator, _, publisher, tree = build_scene(spec)
        # Subscribers on edges 0..2 warm the mid tier; edge 3 stays cold.
        tree.attach_subscribers(3)
        tree.subscribe_all(TRACK)
        simulator.run(until=simulator.now + 3.0)
        publisher.push_version(2, b"v2")
        simulator.run(until=simulator.now + 3.0)

        # A late subscriber lands on the cold edge-3 (round-robin index 3),
        # whose parent mid-1 already caches v2 via its edge-1 child.
        (late,) = tree.attach_subscribers(1)
        assert late.leaf.index == 3
        fetched = []
        subscription = late.session.subscribe(TRACK)
        late.session.joining_fetch(subscription, 1, on_complete=fetched.append)
        simulator.run(until=simulator.now + 4.0)

        assert fetched and fetched[0].succeeded
        assert [obj.payload for obj in fetched[0].objects] == [b"v2"]
        edge3 = tree.tier("edge")[3].relay
        mid1 = tree.tier("mid")[1].relay
        assert edge3.statistics.fetches_forwarded_upstream == 1
        assert mid1.statistics.fetches_served_from_cache == 1
        assert len(publisher.fetches) == 0, "the origin never saw the fetch"

    def test_loss_on_one_tier_does_not_corrupt_sibling_subtrees(self):
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        simulator, network, publisher, tree = build_scene(spec, seed=13)
        # One subscriber per edge relay.
        tree.attach_subscribers(4)
        received: dict[int, list[int]] = {sub.index: [] for sub in tree.subscribers}
        tree.subscribe_all(
            TRACK, on_object=lambda sub, obj: received[sub.index].append(obj.group_id)
        )
        # Degrade the uplink of edge-0 only (mid-0 <-> edge-0), after the
        # sessions are set up, by replacing the link pair with a lossy one.
        lossy_edge = tree.tier("edge")[0]
        network.connect(
            lossy_edge.parent.host,
            lossy_edge.host,
            LinkConfig(delay=0.010, loss_rate=0.3),
        )
        simulator.run(until=simulator.now + 3.0)
        for group in range(2, 7):
            publisher.push_version(group, f"v{group}".encode())
            simulator.run(until=simulator.now + 0.5)
        # Generous drain: the lossy uplink needs retransmissions.
        simulator.run(until=simulator.now + 20.0)

        expected = [2, 3, 4, 5, 6]
        for subscriber in tree.subscribers:
            groups = received[subscriber.index]
            if subscriber.leaf is lossy_edge:
                # Streams are reliable: the lossy subtree still converges.
                assert sorted(groups) == expected
            else:
                assert groups == expected, "clean subtrees deliver in order, unaffected"


class TestUpstreamTeardown:
    def test_dead_uplink_errors_waiters_instead_of_wedging_the_track(self):
        # No MoQT endpoint at the origin: the relay's upstream connection
        # gives up after its bounded retries.  Waiters must get an error and
        # the track must stay retryable, not defer subscribers forever.
        simulator = Simulator(seed=19)
        network = Network(simulator)
        network.add_host(ORIGIN)  # host exists, but nothing listens
        tree = RelayTreeBuilder(network, Address(ORIGIN, ORIGIN_PORT)).build(
            RelayTreeSpec.star(relays=1)
        )
        first, second = tree.attach_subscribers(2)
        states = []
        first.session.subscribe(TRACK, on_response=lambda s: states.append(("a", s.state)))
        second.session.subscribe(TRACK, on_response=lambda s: states.append(("b", s.state)))
        simulator.run(until=simulator.now + 120.0)
        assert sorted(states) == [("a", "error"), ("b", "error")]
        relay = tree.tiers[0][0].relay
        track = relay.tracks()[TRACK]
        assert track.awaiting_upstream == []
        assert track.downstream == []
        assert track.upstream_subscription is None

    def test_last_unsubscribe_tears_down_the_whole_chain(self):
        spec = RelayTreeSpec.cdn(mid_relays=1, edge_per_mid=1)
        simulator, _, publisher, tree = build_scene(spec)
        first, second = tree.attach_subscribers(2)
        subscriptions = tree.subscribe_all(TRACK)
        simulator.run(until=simulator.now + 3.0)
        edge = tree.tier("edge")[0].relay
        mid = tree.tier("mid")[0].relay
        assert edge.statistics.upstream_subscribes == 1
        assert publisher.sessions[0].publisher_subscriptions()

        # First unsubscribe: the edge still has one subscriber, nothing moves.
        first.session.unsubscribe(subscriptions[0])
        simulator.run(until=simulator.now + 2.0)
        assert edge.statistics.upstream_unsubscribes == 0

        # Last unsubscribe: teardown cascades edge -> mid -> origin.
        second.session.unsubscribe(subscriptions[1])
        simulator.run(until=simulator.now + 2.0)
        assert edge.statistics.upstream_unsubscribes == 1
        assert mid.statistics.upstream_unsubscribes == 1
        assert edge.tracks()[TRACK].upstream_subscription is None
        assert publisher.sessions[0].publisher_subscriptions() == []

        # A returning subscriber re-establishes the chain from scratch.
        (returning,) = tree.attach_subscribers(1)
        states = []
        returning.session.subscribe(TRACK, on_response=lambda s: states.append(s.state))
        simulator.run(until=simulator.now + 3.0)
        assert states == ["active"]
        assert edge.statistics.upstream_subscribes == 2
        assert publisher.sessions[-1].publisher_subscriptions() or (
            publisher.sessions[0].publisher_subscriptions()
        )

    def test_downstream_session_close_releases_upstream_subscription(self):
        spec = RelayTreeSpec.star(relays=1)
        simulator, _, publisher, tree = build_scene(spec)
        (subscriber,) = tree.attach_subscribers(1)
        tree.subscribe_all(TRACK)
        simulator.run(until=simulator.now + 3.0)
        relay = tree.tiers[0][0].relay
        assert relay.tracks()[TRACK].downstream

        subscriber.session.close("resolver shutting down")
        simulator.run(until=simulator.now + 2.0)
        assert relay.tracks()[TRACK].downstream == []
        assert relay.tracks()[TRACK].upstream_subscription is None
        assert relay.statistics.upstream_unsubscribes == 1
        assert publisher.sessions[0].publisher_subscriptions() == []


class TestStatsAndModel:
    def test_snapshot_delta_isolates_the_update_window(self):
        spec = RelayTreeSpec.cdn(mid_relays=2, edge_per_mid=2)
        simulator, _, publisher, tree = build_scene(spec)
        tree.attach_subscribers(4)
        tree.subscribe_all(TRACK)
        simulator.run(until=simulator.now + 3.0)
        before = RelayNetStats.collect(tree)
        assert before.origin_egress_bytes > 0, "setup traffic is visible pre-snapshot"
        publisher.push_version(2, b"x" * 100)
        simulator.run(until=simulator.now + 3.0)
        delta = RelayNetStats.collect(tree).delta(before)
        assert delta.tiers[0].objects_received == 2
        assert delta.tiers[1].objects_received == 4
        assert delta.subscriber_objects_received == 4
        assert delta.tiers[0].downstream_subscribes == 0, "setup excluded from the window"
        assert delta.total_link_bytes == sum(delta.tier_uplink_bytes()) + delta.subscriber_link_bytes

    def test_fanout_model_closed_forms(self):
        assert unicast_origin_messages(1000, 5) == 5000
        model = fanout_model(subscribers=1000, updates=5, tier_sizes=(4, 16), bytes_per_update=100)
        assert model.tier_messages() == (20, 80, 5000)
        assert model.origin_messages == 20
        assert model.origin_reduction_factor == 250.0
        assert model.tier_bytes()[0] == 2000.0
        # Sparse population: idle relays receive nothing.
        sparse = fanout_model(subscribers=10, updates=5, tier_sizes=(4, 16))
        assert sparse.tier_receivers == (4, 10, 10)
        assert relative_deviation(110, 100) == pytest.approx(0.10)
        assert relative_deviation(0, 0) == 0.0


@pytest.mark.slow
class TestFanoutExperiment:
    def test_thousand_subscriber_tree_matches_model_within_10_percent(self):
        from repro.experiments.relay_fanout import run_relay_fanout

        result = run_relay_fanout(subscriber_counts=(10, 1000), updates=5)
        for sample in result.samples:
            assert sample.delivered_objects == sample.subscribers * sample.updates
            assert sample.max_tier_byte_deviation <= 0.10
            assert sample.measured_origin_objects == sample.model.origin_messages
        small, large = result.samples
        # Origin egress is O(branching factor): flat over a 100x population
        # growth, while the unicast baseline scales linearly.
        assert large.origin_egress_bytes == small.origin_egress_bytes
        assert large.model.unicast_messages == 100 * small.model.unicast_messages

    def test_experiment_is_deterministic(self):
        from repro.experiments.relay_fanout import run_relay_fanout

        first = run_relay_fanout(subscriber_counts=(50,), updates=3, mid_relays=2, edge_per_mid=2)
        second = run_relay_fanout(subscriber_counts=(50,), updates=3, mid_relays=2, edge_per_mid=2)
        assert [s.as_row() for s in first.samples] == [s.as_row() for s in second.samples]
        assert first.samples[0].measured_tier_bytes == second.samples[0].measured_tier_bytes
