"""Tests for QUIC varints, frames, packets and the TLS simulation."""

from __future__ import annotations

import pytest

from repro.quic.frames import (
    AckFrame,
    ConnectionCloseFrame,
    CryptoFrame,
    DatagramFrame,
    HandshakeDoneFrame,
    PaddingFrame,
    PingFrame,
    StreamFrame,
    decode_frames,
    encode_frames,
)
from repro.quic.packet import Packet, PacketType
from repro.quic.stream import (
    QuicStream,
    StreamDirection,
    make_stream_id,
    stream_initiator_is_client,
    stream_is_unidirectional,
)
from repro.quic.tls import (
    AlpnMismatchError,
    ClientHello,
    ServerHello,
    ServerTlsContext,
    SessionTicket,
    SessionTicketStore,
)
from repro.quic.varint import (
    MAX_VARINT,
    VarintError,
    VarintReader,
    VarintWriter,
    decode_varint,
    encode_varint,
    varint_size,
)


class TestVarints:
    @pytest.mark.parametrize(
        "value,size",
        [(0, 1), (63, 1), (64, 2), (16383, 2), (16384, 4), (1073741823, 4), (1073741824, 8), (MAX_VARINT, 8)],
    )
    def test_size_boundaries(self, value, size):
        assert varint_size(value) == size
        assert len(encode_varint(value)) == size

    @pytest.mark.parametrize("value", [0, 1, 37, 63, 64, 300, 16383, 16384, 5_000_000, MAX_VARINT])
    def test_roundtrip(self, value):
        encoded = encode_varint(value)
        decoded, offset = decode_varint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    def test_out_of_range_rejected(self):
        with pytest.raises(VarintError):
            encode_varint(MAX_VARINT + 1)
        with pytest.raises(VarintError):
            encode_varint(-1)

    def test_truncated_decoding_rejected(self):
        with pytest.raises(VarintError):
            decode_varint(b"")
        with pytest.raises(VarintError):
            decode_varint(encode_varint(70_000)[:2])

    def test_reader_writer_roundtrip(self):
        writer = VarintWriter()
        writer.write_varint(1234).write_uint8(7).write_uint16(600).write_length_prefixed(b"abc")
        reader = VarintReader(writer.getvalue())
        assert reader.read_varint() == 1234
        assert reader.read_uint8() == 7
        assert reader.read_uint16() == 600
        assert reader.read_length_prefixed() == b"abc"
        assert reader.at_end()

    def test_reader_remaining_and_read_remaining(self):
        reader = VarintReader(b"\x01\x02\x03")
        reader.read_uint8()
        assert reader.remaining == 2
        assert reader.read_remaining() == b"\x02\x03"

    def test_writer_rejects_out_of_range_fixed_ints(self):
        with pytest.raises(VarintError):
            VarintWriter().write_uint8(256)
        with pytest.raises(VarintError):
            VarintWriter().write_uint16(70_000)


class TestFrames:
    def test_all_frames_roundtrip(self):
        frames = [
            PingFrame(),
            AckFrame(largest=12, delay_us=30),
            CryptoFrame(b"hello-tls"),
            StreamFrame(stream_id=4, offset=10, data=b"payload", fin=True),
            DatagramFrame(b"dgram"),
            ConnectionCloseFrame(error_code=3, reason="bye"),
            HandshakeDoneFrame(),
        ]
        decoded = decode_frames(encode_frames(frames))
        assert decoded == frames

    def test_padding_runs_collapse(self):
        decoded = decode_frames(bytes(5) + PingFrame().encode())
        assert isinstance(decoded[0], PaddingFrame)
        assert decoded[0].length == 5
        assert isinstance(decoded[1], PingFrame)

    def test_unknown_frame_type_rejected(self):
        with pytest.raises(ValueError):
            decode_frames(b"\x3f")


class TestPackets:
    def test_packet_roundtrip(self):
        packet = Packet(
            packet_type=PacketType.ONE_RTT,
            connection_id=77,
            packet_number=5,
            frames=(StreamFrame(stream_id=0, offset=0, data=b"x", fin=False),),
        )
        decoded = Packet.decode(packet.encode())
        assert decoded == packet

    def test_ack_only_packet_is_not_ack_eliciting(self):
        ack_only = Packet(PacketType.ONE_RTT, 1, 1, (AckFrame(largest=1),))
        data = Packet(PacketType.ONE_RTT, 1, 2, (PingFrame(),))
        assert not ack_only.is_ack_eliciting
        assert data.is_ack_eliciting


class TestStreamIds:
    def test_stream_id_composition(self):
        assert make_stream_id(0, True, StreamDirection.BIDIRECTIONAL) == 0
        assert make_stream_id(1, True, StreamDirection.BIDIRECTIONAL) == 4
        assert make_stream_id(0, False, StreamDirection.BIDIRECTIONAL) == 1
        assert make_stream_id(0, True, StreamDirection.UNIDIRECTIONAL) == 2
        assert make_stream_id(0, False, StreamDirection.UNIDIRECTIONAL) == 3

    def test_stream_id_predicates(self):
        assert stream_initiator_is_client(4)
        assert not stream_initiator_is_client(5)
        assert stream_is_unidirectional(2)
        assert not stream_is_unidirectional(0)


class TestStreamReassembly:
    def test_in_order_delivery(self):
        received = []
        stream = QuicStream(0, on_data=lambda sid, data, fin: received.append((data, fin)))
        stream.receive(0, b"hello ", False)
        stream.receive(6, b"world", True)
        assert received == [(b"hello ", False), (b"world", True)]
        assert stream.receive_closed

    def test_out_of_order_reassembly(self):
        received = []
        stream = QuicStream(0, on_data=lambda sid, data, fin: received.append((data, fin)))
        stream.receive(6, b"world", True)
        assert received == []
        stream.receive(0, b"hello ", False)
        assert received == [(b"hello world", True)]

    def test_write_after_fin_rejected(self):
        stream = QuicStream(0)
        stream.write(b"data", fin=True)
        with pytest.raises(ValueError):
            stream.write(b"more")

    def test_take_pending_drains_offsets(self):
        stream = QuicStream(4)
        stream.write(b"abc")
        stream.write(b"def", fin=True)
        pending = stream.take_pending()
        assert pending == [(0, b"abc", False), (3, b"def", True)]
        assert stream.take_pending() == []


class TestSimulatedTls:
    def test_client_hello_roundtrip(self):
        hello = ClientHello("auth.example", ("moq-00", "doq"), offers_early_data=False)
        decoded = ClientHello.from_bytes(hello.to_bytes())
        assert decoded.server_name == "auth.example"
        assert decoded.alpn_protocols == ("moq-00", "doq")

    def test_server_selects_first_common_alpn(self):
        context = ServerTlsContext(alpn_protocols=("doq", "moq-00"))
        server_hello = context.process_client_hello(
            ClientHello("s", ("moq-00", "doq"), offers_early_data=False)
        )
        assert server_hello.alpn == "moq-00"

    def test_alpn_mismatch_raises(self):
        context = ServerTlsContext(alpn_protocols=("h3",))
        with pytest.raises(AlpnMismatchError):
            context.process_client_hello(ClientHello("s", ("moq-00",), offers_early_data=False))

    def test_early_data_needs_ticket_and_server_policy(self):
        context = ServerTlsContext(alpn_protocols=("moq-00",), accept_early_data=True)
        ticket = SessionTicket("s", "moq-00", issued_at=0.0, ticket_id=3)
        accepted = context.process_client_hello(
            ClientHello("s", ("moq-00",), session_ticket=ticket, offers_early_data=True)
        )
        assert accepted.accepts_early_data
        refused = context.process_client_hello(
            ClientHello("s", ("moq-00",), session_ticket=None, offers_early_data=False)
        )
        assert not refused.accepts_early_data

    def test_ticket_store_expiry(self):
        store = SessionTicketStore()
        store.put(SessionTicket("s", "moq-00", issued_at=0.0, lifetime=10.0, ticket_id=1))
        assert store.get("s", now=5.0) is not None
        assert store.get("s", now=20.0) is None
        assert len(store) == 0

    def test_server_hello_roundtrip(self):
        hello = ServerHello(alpn="moq-00", accepts_early_data=True, new_ticket_id=9)
        decoded = ServerHello.from_bytes(hello.to_bytes())
        assert decoded == hello
