"""Tests for the measurement pipeline and the analytical models."""

from __future__ import annotations

import math

import pytest

from repro.analysis.latency_model import (
    TransportScenario,
    lookup_latency,
    lookup_round_trips,
    recursive_lookup_latency,
    scenario_table,
)
from repro.analysis.staleness import (
    expected_staleness_polling,
    pubsub_staleness,
    staleness_reduction_factor,
    worst_case_staleness,
)
from repro.analysis.state_overhead import StateModel, endpoint_state_bytes, state_comparison
from repro.analysis.traffic import (
    crossover_change_interval,
    polling_requests,
    pubsub_messages,
    traffic_comparison,
)
from repro.analysis.usecases import (
    cdn_stub_traffic_bps,
    ddns_update_traffic_bps,
    deep_space_update_traffic_bps,
)
from repro.dns.types import RecordType
from repro.measurement.campaign import CampaignConfig, MeasurementCampaign
from repro.measurement.change_rate import count_changes, summarize_change_counts
from repro.workload.toplist import SyntheticToplist, ToplistConfig


class TestChangeCounting:
    def test_reordered_samples_do_not_count_as_changes(self):
        samples = [["1.1.1.1", "2.2.2.2"], ["2.2.2.2", "1.1.1.1"], ["1.1.1.1", "2.2.2.2"]]
        assert count_changes(samples) == 0

    def test_real_changes_counted(self):
        samples = [["1.1.1.1"], ["1.1.1.1"], ["3.3.3.3"], ["3.3.3.3"], ["1.1.1.1"]]
        assert count_changes(samples) == 2

    def test_empty_and_single_sample(self):
        assert count_changes([]) == 0
        assert count_changes([["1.1.1.1"]]) == 0

    def test_summary_percentiles(self):
        summary = summarize_change_counts(300, [0, 0, 10, 100, 200], observations=300)
        assert summary.ttl == 300
        assert summary.domains == 5
        assert summary.max == 200
        assert summary.zero_change_fraction == pytest.approx(0.4)
        assert summary.p90 >= summary.p50


class TestMeasurementCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        toplist = SyntheticToplist(ToplistConfig(size=800, seed=13))
        return MeasurementCampaign(
            toplist, config=CampaignConfig(observations=100, max_domains_per_ttl=30)
        )

    def test_ttl_distribution_totals_match_toplist(self, campaign):
        distribution = campaign.ttl_distribution()
        counts = campaign.toplist.count_by_type()
        assert distribution.totals[RecordType.A] == counts[RecordType.A]
        assert distribution.population == len(campaign.toplist)
        assert 0.0 < distribution.fraction(RecordType.HTTPS) < 0.3
        assert distribution.rows()

    def test_change_rates_follow_paper_shape(self, campaign):
        result = campaign.change_rates()
        low = [s for ttl, s in result.summaries.items() if ttl <= 300]
        high = [s for ttl, s in result.summaries.items() if ttl >= 600]
        assert low and high
        assert min(s.p90 for s in low) > 0.2 * 100
        assert max(s.p90 for s in high) == 0
        assert all(s.observations == 100 for s in result.summaries.values())

    def test_max_domains_per_ttl_cap_respected(self, campaign):
        result = campaign.change_rates()
        assert all(summary.domains <= 30 for summary in result.summaries.values())


class TestLatencyModel:
    def test_round_trip_counts_match_paper(self):
        assert lookup_round_trips(TransportScenario.UDP) == 1
        assert lookup_round_trips(TransportScenario.MOQT_COLD) == 3
        assert lookup_round_trips(TransportScenario.MOQT_REUSED_SESSION) == 1
        assert lookup_round_trips(TransportScenario.MOQT_0RTT) == 2
        assert lookup_round_trips(TransportScenario.MOQT_0RTT_ALPN) == 1

    def test_latency_scales_with_rtt(self):
        assert lookup_latency(TransportScenario.MOQT_COLD, 0.1) == pytest.approx(0.3)
        with pytest.raises(ValueError):
            lookup_latency(TransportScenario.UDP, -1.0)

    def test_recursive_breakdown(self):
        breakdown = recursive_lookup_latency(
            TransportScenario.MOQT_COLD, stub_rtt=0.01, upstream_rtts=[0.04, 0.04, 0.04]
        )
        assert breakdown.stub_to_recursive == pytest.approx(0.03)
        assert breakdown.recursive_to_authorities == pytest.approx(0.36)
        assert breakdown.total == pytest.approx(0.39)

    def test_cache_hit_skips_upstream(self):
        breakdown = recursive_lookup_latency(
            TransportScenario.UDP, 0.01, [0.04] * 3, recursive_cache_hit=True
        )
        assert breakdown.total == pytest.approx(0.01)

    def test_scenario_table_ordering(self):
        table = scenario_table(rtt=0.05)
        assert table["moqt-cold"] > table["moqt-0rtt"] > table["moqt-reused"]
        assert table["udp"] == table["moqt-reused"] == table["moqt-0rtt-alpn"]


class TestStalenessModel:
    def test_worst_case_scales_with_layers(self):
        assert worst_case_staleness(300, cache_layers=2) == 600
        with pytest.raises(ValueError):
            worst_case_staleness(-1)
        with pytest.raises(ValueError):
            worst_case_staleness(300, cache_layers=0)

    def test_expected_polling_is_half_ttl_per_layer(self):
        assert expected_staleness_polling(300) == 150
        assert expected_staleness_polling(300, cache_layers=2) == 300

    def test_pubsub_is_sum_of_propagation_delays(self):
        assert pubsub_staleness([0.02, 0.005]) == pytest.approx(0.025)
        with pytest.raises(ValueError):
            pubsub_staleness([-0.1])

    def test_reduction_factor_large_for_typical_ttls(self):
        factor = staleness_reduction_factor(300, [0.02, 0.005])
        assert factor > 1000


class TestTrafficModel:
    def test_polling_counts_one_request_per_ttl(self):
        assert polling_requests(duration=3600, ttl=300) == 12
        assert polling_requests(duration=3600, ttl=300, resolvers=10) == 120
        with pytest.raises(ValueError):
            polling_requests(10, 0)

    def test_pubsub_counts_changes_plus_setup(self):
        assert pubsub_messages(duration=3600, change_interval=600) == 7  # 6 pushes + setup
        assert pubsub_messages(3600, 600, include_setup=False) == 6
        assert pubsub_messages(3600, 0, include_setup=False) == 0

    def test_comparison_and_crossover(self):
        wins = traffic_comparison(3600, ttl=300, change_interval=3600)
        assert wins.pubsub_wins and wins.reduction_factor > 1
        loses = traffic_comparison(3600, ttl=3600, change_interval=60, include_setup=False)
        assert not loses.pubsub_wins
        assert crossover_change_interval(300) == 300

    def test_comparison_scales_with_resolvers(self):
        single = traffic_comparison(3600, 300, 3600, resolvers=1)
        many = traffic_comparison(3600, 300, 3600, resolvers=100)
        assert many.polling == 100 * single.polling


class TestUseCaseEstimates:
    def test_ddns_estimate_matches_paper(self):
        estimate = ddns_update_traffic_bps()
        assert estimate.gbps == pytest.approx(5.5, rel=0.05)

    def test_cdn_estimate_matches_paper(self):
        estimate = cdn_stub_traffic_bps()
        assert estimate.kbps == pytest.approx(240.0, rel=0.01)

    def test_deep_space_throttling_reduces_traffic(self):
        throttled = deep_space_update_traffic_bps(throttled_fraction=0.9)
        unthrottled = deep_space_update_traffic_bps(throttled_fraction=0.0)
        assert throttled.bits_per_second < unthrottled.bits_per_second

    def test_estimates_expose_inputs(self):
        estimate = cdn_stub_traffic_bps()
        as_dict = estimate.as_dict()
        assert as_dict["subscribed_domains"] == 1000
        assert as_dict["bits_per_second"] == estimate.bits_per_second

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            cdn_stub_traffic_bps(update_interval_seconds=0)
        with pytest.raises(ValueError):
            deep_space_update_traffic_bps(throttled_fraction=1.5)


class TestStateOverheadModel:
    def test_state_bytes_additive(self):
        model = StateModel()
        total = endpoint_state_bytes(2, 2, 10, 10, model)
        assert total == 2 * model.bytes_per_connection + 2 * model.bytes_per_session + 10 * (
            model.bytes_per_subscription + model.bytes_per_cache_entry
        )

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            endpoint_state_bytes(-1, 0, 0)

    def test_moqt_always_costs_more_than_classic(self):
        comparison = state_comparison(tracked_questions=1000, upstream_servers=10)
        assert comparison["moqt_bytes"] > comparison["classic_bytes"]
        assert comparison["extra_bytes"] == comparison["moqt_bytes"] - comparison["classic_bytes"]


class TestConstrainedPathModel:
    """Closed-form serialisation/propagation model behind E15."""

    def _model(self, bandwidth, wire_bytes=328):
        from repro.analysis.constrained import ConstrainedPathModel, HopSpec

        return ConstrainedPathModel(
            hops=(
                HopSpec(delay=0.020, bandwidth=bandwidth),
                HopSpec(delay=0.010, bandwidth=bandwidth),
                HopSpec(delay=0.005, bandwidth=bandwidth),
            ),
            wire_bytes=wire_bytes,
        )

    def test_delivery_time_replays_the_simulator_fold(self):
        model = self._model(200_000.0)
        push_time = 7.25
        expected = push_time
        for delay in (0.020, 0.010, 0.005):
            expected = expected + 328 * 8 / 200_000.0
            expected = expected + delay
        assert model.delivery_time(push_time) == expected
        assert model.delivery_latency() == model.delivery_time(0.0)

    def test_unconstrained_hops_add_no_serialisation(self):
        model = self._model(None)
        assert model.serialisation_seconds == 0.0
        assert model.delivery_latency() == model.propagation_seconds
        assert not model.serialisation_dominates

    def test_knee_index_on_a_descending_sweep(self):
        from repro.analysis.constrained import knee_index

        # 328 B * 8 = 2624 bits per hop; serialisation crosses the 35 ms
        # propagation floor between 250 kbit/s (31.5 ms) and 200 kbit/s
        # (39.4 ms).
        sweep = [self._model(b) for b in (1_000_000.0, 250_000.0, 200_000.0, 50_000.0)]
        assert [m.serialisation_dominates for m in sweep] == [False, False, True, True]
        assert knee_index(sweep) == 2
        assert knee_index([self._model(10_000_000.0)]) == -1

    def test_no_queueing_precondition(self):
        model = self._model(200_000.0)
        # One update serialises in 13.12 ms per hop: far below a 250 ms
        # push interval, just above a 13 ms one.
        assert model.no_queueing_below(0.25)
        assert not model.no_queueing_below(0.013)
        assert self._model(None).no_queueing_below(1e-9)

    def test_validation(self):
        import pytest

        from repro.analysis.constrained import ConstrainedPathModel, HopSpec

        with pytest.raises(ValueError, match="at least one hop"):
            ConstrainedPathModel(hops=(), wire_bytes=100)
        with pytest.raises(ValueError, match="wire_bytes"):
            ConstrainedPathModel(hops=(HopSpec(delay=0.01),), wire_bytes=0)
        with pytest.raises(ValueError, match="bandwidth"):
            HopSpec(delay=0.01, bandwidth=0.0)
        with pytest.raises(ValueError, match="delay"):
            HopSpec(delay=-0.01)
