"""Tests for flash-crowd admission control: policies, the token bucket,
the relay gate, storm retries/spillover, the closed-form model and the
default-off determinism guarantee (E16)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.admission import AdmissionModel, percentile
from repro.relaynet.admission import retry_after_to_ms
from repro.experiments.flash_crowd import run_flash_crowd
from repro.moqt.errors import AdmissionRejectedError, SubscribeErrorCode
from repro.moqt.objectmodel import MoqtObject
from repro.moqt.origin import ORIGIN_HOST, ORIGIN_PORT, TRACK, build_origin
from repro.netsim.link import LinkConfig
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.quic.connection import ConnectionConfig
from repro.relaynet import (
    UNLIMITED,
    AdmissionController,
    AdmissionPolicy,
    RelayTreeBuilder,
    RelayTreeSpec,
    RetryPolicy,
)


def build_tree(seed=11, relays=1, admission=None, prewarm=0, settle=3.0):
    """Origin + star tree, optionally pre-warmed with settled subscribers."""
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    publisher = build_origin(network)
    tree = RelayTreeBuilder(
        network, Address(ORIGIN_HOST, ORIGIN_PORT), admission=admission
    ).build(RelayTreeSpec.star(relays=relays))
    if prewarm:
        tree.attach_subscribers(prewarm)
        tree.subscribe_all(TRACK)
    simulator.run(until=simulator.now + settle)
    return simulator, publisher, tree


class TestPolicyValidation:
    def test_admission_policy_rejects_bad_values(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(subscribe_rate=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(subscribe_rate=-5.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(bucket_depth=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_pending_subscribes=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(queue_retry_after=0.0)

    def test_retry_policy_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_delay=0.01, base_delay=0.05)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_spillovers=-1)

    def test_unlimited_policy_needs_no_controller(self):
        assert not UNLIMITED.limited
        assert AdmissionPolicy(subscribe_rate=10.0).limited
        assert AdmissionPolicy(max_pending_subscribes=5).limited
        with pytest.raises(ValueError):
            AdmissionController(UNLIMITED)

    def test_model_preconditions(self):
        limited = AdmissionPolicy(subscribe_rate=10.0)
        with pytest.raises(ValueError):
            AdmissionModel(count=0, window=1.0, start=0.0, policy=limited, link_delay=0.005)
        with pytest.raises(ValueError):
            AdmissionModel(count=1, window=1.0, start=0.0, policy=UNLIMITED, link_delay=0.005)
        with pytest.raises(ValueError):
            AdmissionModel(
                count=1, window=1.0, start=0.0, link_delay=0.005,
                policy=AdmissionPolicy(subscribe_rate=10.0, advertise_retry_after=False),
            )

    def test_retry_after_to_ms_rounds_up_and_floors_at_one(self):
        assert retry_after_to_ms(0.0001) == 1
        assert retry_after_to_ms(0.05) == 50
        assert retry_after_to_ms(0.0501) == 51

    def test_percentile_nearest_rank(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0
        assert percentile([1.0], 0.99) == 1.0
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)


class TestTokenBucket:
    def test_burst_admits_exactly_bucket_depth(self):
        controller = AdmissionController(AdmissionPolicy(subscribe_rate=100.0, bucket_depth=5))
        verdicts = [controller.decide(f"s{i}", 0.0, 0).admitted for i in range(6)]
        assert verdicts == [True] * 5 + [False]

    def test_rejections_get_exact_consecutive_slots(self):
        controller = AdmissionController(AdmissionPolicy(subscribe_rate=10.0, bucket_depth=2))
        assert controller.decide("a", 0.0, 0).admitted
        assert controller.decide("b", 0.0, 0).admitted
        first = controller.decide("c", 0.0, 0)
        second = controller.decide("d", 0.0, 0)
        assert not first.admitted and first.cause == "rate"
        assert first.retry_after == 0.1 and second.retry_after == 0.2
        assert first.retry_after_ms == 100 and second.retry_after_ms == 200
        assert controller.outstanding_reservations == 2

    def test_reservation_honored_on_retry(self):
        controller = AdmissionController(AdmissionPolicy(subscribe_rate=10.0, bucket_depth=1))
        assert controller.decide("a", 0.0, 0).admitted
        rejected = controller.decide("b", 0.0, 0)
        assert not rejected.admitted
        retry = controller.decide("b", 0.0 + rejected.retry_after, 0)
        assert retry.admitted
        assert controller.outstanding_reservations == 0

    def test_early_retry_restates_remaining_wait(self):
        controller = AdmissionController(AdmissionPolicy(subscribe_rate=10.0, bucket_depth=1))
        controller.decide("a", 0.0, 0)
        rejected = controller.decide("b", 0.0, 0)
        early = controller.decide("b", 0.04, 0)
        assert not early.admitted
        assert early.retry_after == pytest.approx(rejected.retry_after - 0.04)
        # The reservation survives the impatient retry.
        assert controller.decide("b", rejected.retry_after, 0).admitted

    def test_forget_drops_reservation(self):
        controller = AdmissionController(AdmissionPolicy(subscribe_rate=10.0, bucket_depth=1))
        controller.decide("a", 0.0, 0)
        controller.decide("b", 0.0, 0)
        assert controller.outstanding_reservations == 1
        controller.forget("b")
        assert controller.outstanding_reservations == 0

    def test_idle_refill_restores_full_burst(self):
        controller = AdmissionController(AdmissionPolicy(subscribe_rate=10.0, bucket_depth=3))
        for name in ("a", "b", "c"):
            assert controller.decide(name, 0.0, 0).admitted
        assert not controller.decide("d", 0.0, 0).admitted
        # After the bucket fully refills, a fresh burst of 3 fits again.
        later = 1.0
        for name in ("e", "f", "g"):
            assert controller.decide(name, later, 0).admitted
        assert not controller.decide("h", later, 0).admitted

    def test_saturated_is_a_pure_peek(self):
        controller = AdmissionController(AdmissionPolicy(subscribe_rate=10.0, bucket_depth=1))
        assert not controller.saturated(0.0, 0)
        assert controller.decide("a", 0.0, 0).admitted
        assert controller.saturated(0.01, 0)
        assert controller.outstanding_reservations == 0
        # The peek consumed nothing: the token freed at 0.1 is still there.
        assert not controller.saturated(0.1, 0)
        assert controller.decide("b", 0.1, 0).admitted

    def test_queue_bound_rejects_with_policy_quantum(self):
        policy = AdmissionPolicy(max_pending_subscribes=2, queue_retry_after=0.07)
        controller = AdmissionController(policy)
        assert controller.decide("a", 0.0, 1).admitted
        rejected = controller.decide("b", 0.0, 2)
        assert not rejected.admitted and rejected.cause == "queue"
        assert rejected.retry_after == 0.07
        assert controller.saturated(0.0, 2)

    def test_priority_bypass(self):
        policy = AdmissionPolicy(
            subscribe_rate=10.0, bucket_depth=1, priority_admit_threshold=10
        )
        controller = AdmissionController(policy)
        assert controller.decide("a", 0.0, 0).admitted
        assert not controller.decide("b", 0.0, 0, subscriber_priority=128).admitted
        # MoQT priorities are lowest-wins: 5 <= 10 cuts the line.
        assert controller.decide("c", 0.0, 0, subscriber_priority=5).admitted

    def test_no_hint_when_not_advertised(self):
        policy = AdmissionPolicy(
            subscribe_rate=10.0, bucket_depth=1, advertise_retry_after=False
        )
        controller = AdmissionController(policy)
        controller.decide("a", 0.0, 0)
        rejected = controller.decide("b", 0.0, 0)
        assert not rejected.admitted
        assert rejected.retry_after == 0.0 and rejected.retry_after_ms == 0
        # The reservation is still kept for the backing-off client.
        assert controller.outstanding_reservations == 1


class TestRelayGate:
    def test_rejected_subscribe_leaves_no_dangling_state(self):
        # One pre-warmed subscriber holds the only token; the second
        # SUBSCRIBE must bounce without registering anything on the relay.
        policy = AdmissionPolicy(subscribe_rate=0.1, bucket_depth=1)
        simulator, _, tree = build_tree(admission=policy, prewarm=1)
        relay = tree.leaves()[0].relay
        assert relay.statistics.admission_rejections == 0
        late = tree.attach_subscribers(1)[0]
        responses = []
        late.session.subscribe(TRACK, on_response=responses.append)
        simulator.run(until=simulator.now + 2.0)
        (subscription,) = responses
        assert subscription.state == "error"
        assert subscription.error_code == SubscribeErrorCode.TOO_MANY_SUBSCRIBERS
        assert "admission" in subscription.error_reason
        assert subscription.retry_after_ms > 0
        assert relay.statistics.admission_rejections == 1
        # No dangling relay-side state: one downstream subscriber (the
        # pre-warmed one), one indexed session, nothing awaiting upstream.
        tracks = relay.tracks().values()
        assert sum(len(track.downstream) for track in tracks) == 1
        assert len(relay._downstream_index) == 1
        assert relay.pending_subscribe_count() == 0
        # No dangling client-side state either.
        assert not late.session._pending_incoming_subscribes
        assert subscription.request_id not in late.session._subscriptions

    def test_priority_bypass_counts_and_admits_through_relay(self):
        policy = AdmissionPolicy(
            subscribe_rate=0.1, bucket_depth=1, priority_admit_threshold=16
        )
        simulator, _, tree = build_tree(admission=policy, prewarm=1)
        relay = tree.leaves()[0].relay
        urgent = tree.attach_subscribers(1)[0]
        responses = []
        urgent.session.subscribe(
            TRACK, on_response=responses.append, subscriber_priority=1
        )
        simulator.run(until=simulator.now + 2.0)
        assert responses[0].is_active
        assert relay.statistics.admission_priority_bypasses == 1
        assert relay.statistics.admission_rejections == 0

    def test_queue_bound_counts_queue_rejections(self):
        # Cold track: every SUBSCRIBE during the upstream round trip queues;
        # past the bound the relay rejects with the queue quantum.
        policy = AdmissionPolicy(max_pending_subscribes=2, queue_retry_after=0.2)
        simulator, _, tree = build_tree(admission=policy)
        storm = tree.flash_crowd(6, 0.001, TRACK)
        simulator.run(until=simulator.now + 5.0)
        relay = tree.leaves()[0].relay
        assert relay.statistics.admission_queue_rejections > 0
        assert relay.statistics.pending_subscribe_high_water <= 2
        assert storm.complete
        storm.raise_for_failures()


class TestFlashCrowd:
    def test_throttled_storm_matches_model_bit_exactly(self):
        policy = AdmissionPolicy(subscribe_rate=200.0, bucket_depth=4)
        simulator, _, tree = build_tree(admission=policy, prewarm=1)
        start = simulator.now
        storm = tree.flash_crowd(24, 0.05, TRACK)
        simulator.run(until=simulator.now + 10.0)
        storm.raise_for_failures()
        assert storm.admitted == 24 and storm.complete
        assert storm.rejections == 18 == storm.retries
        model = AdmissionModel(
            count=24, window=0.05, start=start, policy=policy,
            link_delay=tree.spec.subscriber_link.delay,
        )
        assert storm.completion_time == model.completion_time()
        measured = sorted(record.join_latency for record in storm.records)
        assert measured == sorted(model.join_latencies())
        assert storm.completion_time >= model.drain_time_lower_bound()

    def test_storm_delivers_objects_after_admission(self):
        policy = AdmissionPolicy(subscribe_rate=500.0, bucket_depth=2)
        simulator, publisher, tree = build_tree(admission=policy, prewarm=1)
        delivered = []
        storm = tree.flash_crowd(
            6, 0.01, TRACK, on_object=lambda sub, obj: delivered.append(sub.index)
        )
        simulator.run(until=simulator.now + 5.0)
        assert storm.complete
        publisher.push(MoqtObject(group_id=99, object_id=0, payload=b"x" * 40))
        simulator.run(until=simulator.now + 2.0)
        # Every admitted stormer gets the post-storm push exactly once.
        assert sorted(delivered) == sorted(sub.index for sub in storm.subscribers)

    def test_retry_budget_exhaustion_is_terminal_and_raises(self):
        policy = AdmissionPolicy(subscribe_rate=1.0, bucket_depth=1)
        simulator, _, tree = build_tree(admission=policy, prewarm=1)
        storm = tree.flash_crowd(
            5, 0.001, TRACK, retry=RetryPolicy(max_attempts=1, max_spillovers=0)
        )
        simulator.run(until=simulator.now + 5.0)
        assert storm.admitted < 5
        terminal = [record for record in storm.records if record.terminal]
        assert terminal and all(record.attempts == 1 for record in terminal)
        with pytest.raises(AdmissionRejectedError) as excinfo:
            storm.raise_for_failures()
        assert excinfo.value.attempts == 1
        assert excinfo.value.full_track_name == TRACK

    def test_pinned_storm_spills_to_siblings(self):
        policy = AdmissionPolicy(subscribe_rate=50.0, bucket_depth=2)
        simulator, _, tree = build_tree(relays=3, admission=policy, prewarm=3)
        storm = tree.topology.flash_crowd(
            18, 0.02, TRACK, retry=RetryPolicy(max_spillovers=1),
            leaf=tree.leaves()[0],
        )
        simulator.run(until=simulator.now + 10.0)
        storm.raise_for_failures()
        assert storm.complete and storm.spillovers > 0
        homes = {record.leaf for record in storm.records}
        assert len(homes) > 1  # the hotspot actually spread
        # Spilled subscribers live on their new leaf and still get objects.
        spilled = [
            subscriber for subscriber, record in zip(storm.subscribers, storm.records)
            if record.spillovers
        ]
        assert spilled
        assert all(
            subscriber.leaf.host.address != tree.leaves()[0].host.address
            for subscriber in spilled
        )

    def test_unlimited_baseline_high_water_equals_storm_size(self):
        simulator, _, tree = build_tree()
        storm = tree.flash_crowd(16, 0.001, TRACK)
        simulator.run(until=simulator.now + 5.0)
        relay = tree.leaves()[0].relay
        assert storm.complete
        assert relay.statistics.pending_subscribe_high_water == 16
        assert relay.statistics.admission_rejections == 0

    def test_flash_crowd_argument_validation(self):
        _, _, tree = build_tree()
        with pytest.raises(ValueError):
            tree.flash_crowd(0, 0.1, TRACK)
        with pytest.raises(ValueError):
            tree.flash_crowd(5, -0.1, TRACK)


class TestExperiment:
    def test_run_flash_crowd_gates(self):
        result = run_flash_crowd(
            stormers=12, subscribe_rate=150.0, bucket_depth=3,
            baseline_stormers=(8, 16),
        )
        summary = result.summary_row()
        assert summary["baseline_high_water_grows"]
        assert summary["throttled_all_admitted"]
        assert summary["throttled_rejections"] > 0
        assert summary["model_exact"]
        assert summary["spillover_all_admitted"]
        assert summary["spillovers"] > 0
        assert len(result.rows()) == 4


class TestDefaultOffDeterminism:
    @staticmethod
    def _measured_run(admission):
        simulator, publisher, tree = build_tree(seed=23, relays=2, admission=admission)
        tree.attach_subscribers(4)
        delivered = [0]
        tree.subscribe_all(
            TRACK, on_object=lambda sub, obj: delivered.__setitem__(0, delivered[0] + 1)
        )
        simulator.run(until=simulator.now + 3.0)
        for group in range(2, 5):
            publisher.push(MoqtObject(group_id=group, object_id=0, payload=b"p" * 64))
            simulator.run(until=simulator.now + 0.5)
        simulator.run(until=simulator.now + 2.0)
        totals = tuple(sorted(tree.network.total_link_statistics().items()))
        return simulator.events_scheduled, delivered[0], totals

    def test_none_and_unlimited_policy_are_bit_identical(self):
        # The frozen-determinism contract: a relay built with the default
        # UNLIMITED policy instantiates no controller, draws no randomness
        # and emits the exact bytes of a build with admission=None.
        assert self._measured_run(None) == self._measured_run(UNLIMITED)

    def test_generous_limited_policy_changes_no_bytes(self):
        # A limited policy that never rejects gates inline without
        # scheduling events or touching the wire.
        generous = AdmissionPolicy(subscribe_rate=1e6, bucket_depth=64)
        assert self._measured_run(None) == self._measured_run(generous)


class TestSeededStormProperty:
    @given(seed=st.integers(min_value=0, max_value=2**16), count=st.integers(2, 6))
    @settings(max_examples=8, deadline=None)
    def test_backoff_storms_replay_bit_identically(self, seed, count):
        # Satellite: with no retry_after hint the client backoff draws its
        # jitter from the seeded simulator RNG — two runs of the same storm
        # must produce identical retry schedules, admission orders and
        # admission records.
        def run_once():
            policy = AdmissionPolicy(
                subscribe_rate=20.0, bucket_depth=1, advertise_retry_after=False
            )
            simulator, _, tree = build_tree(seed=seed, admission=policy, prewarm=1)
            storm = tree.flash_crowd(
                count, 0.01, TRACK,
                retry=RetryPolicy(base_delay=0.02, max_attempts=12, max_spillovers=0),
            )
            simulator.run(until=simulator.now + 20.0)
            records = [
                (
                    record.name,
                    record.leaf,
                    record.joined_at,
                    record.attempts,
                    record.rejections,
                    tuple(record.retry_schedule),
                    record.admitted_at,
                    record.terminal,
                )
                for record in storm.records
            ]
            order = [
                record.name
                for record in sorted(
                    storm.records, key=lambda record: (record.admitted_at, record.name)
                )
            ]
            return records, order, storm.complete

        first = run_once()
        second = run_once()
        assert first == second
        assert first[2]  # every stormer was eventually admitted


class TestConnectionConfigValidation:
    def test_rejects_non_positive_timers(self):
        with pytest.raises(ValueError):
            ConnectionConfig(idle_timeout=0.0)
        with pytest.raises(ValueError):
            ConnectionConfig(idle_timeout=-1.0)
        with pytest.raises(ValueError):
            ConnectionConfig(keepalive_interval=0.0)
        with pytest.raises(ValueError):
            ConnectionConfig(initial_rtt=0.0)
        with pytest.raises(ValueError):
            ConnectionConfig(liveness_suspect_after=0)

    def test_accepts_valid_configs(self):
        ConnectionConfig()
        ConnectionConfig(keepalive_interval=5.0, liveness_suspect_after=3)

    def test_link_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            LinkConfig(delay=-0.001)
        with pytest.raises(ValueError):
            LinkConfig(bandwidth=0.0)
        with pytest.raises(ValueError):
            LinkConfig(loss_rate=1.0)
        with pytest.raises(ValueError):
            LinkConfig(loss_rate=-0.1)
