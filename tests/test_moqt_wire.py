"""Tests for MoQT track names, control messages and data-stream encodings."""

from __future__ import annotations

import pytest

from repro.moqt.datastream import (
    DataStreamParser,
    FetchStreamHeader,
    SubgroupStreamHeader,
    decode_object_datagram,
    encode_fetch_object,
    encode_object_datagram,
    encode_subgroup_object,
)
from repro.moqt.errors import ProtocolViolation
from repro.moqt.messages import (
    Announce,
    AnnounceOk,
    ClientSetup,
    ControlStreamParser,
    Fetch,
    FetchCancel,
    FetchError,
    FetchOk,
    FetchType,
    FilterType,
    Goaway,
    GroupOrder,
    MaxRequestId,
    MOQT_VERSION_DRAFT_12,
    NeedMoreData,
    ServerSetup,
    Subscribe,
    SubscribeDone,
    SubscribeError,
    SubscribeOk,
    Unsubscribe,
    decode_control_message,
)
from repro.moqt.objectmodel import Location, MoqtObject, ObjectStatus, TrackState
from repro.moqt.parameters import Parameter, Parameters
from repro.moqt.track import (
    FullTrackName,
    MAX_FULL_TRACK_NAME_LENGTH,
    TrackNameError,
    TrackNamespace,
)
from repro.quic.varint import VarintReader


def _track() -> FullTrackName:
    return FullTrackName.of(["dns", "\x01", "q"], b"\x03www\x07example\x03com\x00")


def _roundtrip(message):
    decoded, consumed = decode_control_message(message.encode())
    assert consumed == len(message.encode())
    return decoded


class TestTrackNaming:
    def test_namespace_wire_roundtrip(self):
        namespace = TrackNamespace.of(b"\x10", b"\x00\x01", b"\x00\x01")
        decoded = TrackNamespace.from_reader(VarintReader(namespace.to_wire()))
        assert decoded == namespace

    def test_full_track_name_roundtrip(self):
        track = _track()
        decoded = FullTrackName.from_reader(VarintReader(track.to_wire()))
        assert decoded == track

    def test_namespace_element_count_limits(self):
        with pytest.raises(TrackNameError):
            TrackNamespace(())
        with pytest.raises(TrackNameError):
            TrackNamespace(tuple(bytes([i]) for i in range(33)))

    def test_combined_length_limit_enforced(self):
        namespace = TrackNamespace.of(b"a" * 2000, b"b" * 2000)
        FullTrackName(namespace, b"c" * (MAX_FULL_TRACK_NAME_LENGTH - 4000))
        with pytest.raises(TrackNameError):
            FullTrackName(namespace, b"c" * (MAX_FULL_TRACK_NAME_LENGTH - 4000 + 1))

    def test_prefix_relation(self):
        assert TrackNamespace.of("a", "b").is_prefix_of(TrackNamespace.of("a", "b", "c"))
        assert not TrackNamespace.of("a", "x").is_prefix_of(TrackNamespace.of("a", "b", "c"))


class TestParameters:
    def test_roundtrip(self):
        parameters = Parameters()
        parameters.add(Parameter.varint(0x2, 77))
        parameters.add(Parameter(0x1, b"/dns"))
        decoded = Parameters.from_reader(VarintReader(parameters.to_wire()))
        assert len(decoded) == 2
        assert decoded.get(0x2).as_varint() == 77
        assert decoded.get(0x1).value == b"/dns"
        assert decoded.get(0x9) is None


class TestControlMessages:
    def test_setup_roundtrip(self):
        assert _roundtrip(ClientSetup()).supported_versions == (MOQT_VERSION_DRAFT_12,)
        assert _roundtrip(ServerSetup()).selected_version == MOQT_VERSION_DRAFT_12

    def test_subscribe_roundtrip_latest_object(self):
        message = Subscribe(
            request_id=2,
            track_alias=9,
            full_track_name=_track(),
            subscriber_priority=7,
            group_order=GroupOrder.ASCENDING,
            forward=True,
            filter_type=FilterType.LATEST_OBJECT,
        )
        decoded = _roundtrip(message)
        assert decoded == message

    def test_subscribe_roundtrip_absolute_range(self):
        message = Subscribe(
            request_id=4,
            track_alias=1,
            full_track_name=_track(),
            filter_type=FilterType.ABSOLUTE_RANGE,
            start_group=10,
            start_object=0,
            end_group=20,
        )
        decoded = _roundtrip(message)
        assert decoded.start_group == 10 and decoded.end_group == 20

    def test_subscribe_ok_and_error_roundtrip(self):
        ok = SubscribeOk(request_id=2, expires_ms=1000, content_exists=True,
                         largest_group_id=42, largest_object_id=0)
        decoded = _roundtrip(ok)
        assert decoded.largest_group_id == 42 and decoded.content_exists
        error = SubscribeError(request_id=2, error_code=4, reason="no such track", track_alias=9)
        assert _roundtrip(error) == error

    def test_subscribe_error_retry_after_roundtrip(self):
        error = SubscribeError(
            request_id=5, error_code=7, reason="admission", track_alias=3,
            retry_after_ms=123,
        )
        decoded = _roundtrip(error)
        assert decoded == error and decoded.retry_after_ms == 123

    def test_subscribe_error_without_retry_after_keeps_old_wire_bytes(self):
        # retry_after_ms == 0 must not be encoded at all: the pre-admission
        # four-field wire image is frozen (seeded experiment outputs pin it),
        # and a decoder reading those bytes must yield retry_after_ms == 0.
        error = SubscribeError(request_id=2, error_code=4, reason="x", track_alias=9)
        assert error.encode() == bytes.fromhex("0500050204017809")
        decoded = _roundtrip(error)
        assert decoded == error and decoded.retry_after_ms == 0

    def test_standalone_fetch_roundtrip(self):
        message = Fetch(
            request_id=6,
            fetch_type=FetchType.STANDALONE,
            full_track_name=_track(),
            start_group=1,
            start_object=0,
            end_group=5,
            end_object=0,
        )
        assert _roundtrip(message) == message

    def test_joining_fetch_roundtrip(self):
        message = Fetch(
            request_id=8,
            fetch_type=FetchType.RELATIVE_JOINING,
            joining_request_id=2,
            joining_start=1,
        )
        decoded = _roundtrip(message)
        assert decoded.joining_request_id == 2 and decoded.joining_start == 1
        assert decoded.full_track_name is None

    def test_standalone_fetch_without_track_rejected(self):
        with pytest.raises(ProtocolViolation):
            Fetch(request_id=1, fetch_type=FetchType.STANDALONE).encode()

    def test_fetch_responses_roundtrip(self):
        assert _roundtrip(FetchOk(request_id=6, largest_group_id=3)).largest_group_id == 3
        assert _roundtrip(FetchError(request_id=6, error_code=2, reason="nope")).reason == "nope"
        assert _roundtrip(FetchCancel(request_id=6)).request_id == 6

    def test_misc_messages_roundtrip(self):
        assert _roundtrip(Unsubscribe(request_id=3)).request_id == 3
        assert _roundtrip(SubscribeDone(request_id=3, status_code=0, stream_count=2, reason="done")).stream_count == 2
        namespace = TrackNamespace.of("dns")
        assert _roundtrip(Announce(request_id=1, namespace=namespace)).namespace == namespace
        assert _roundtrip(AnnounceOk(request_id=1)).request_id == 1
        assert _roundtrip(MaxRequestId(request_id=128)).request_id == 128
        assert _roundtrip(Goaway(new_session_uri="moqt://other")).new_session_uri == "moqt://other"

    def test_unknown_message_type_rejected(self):
        with pytest.raises(ProtocolViolation):
            decode_control_message(b"\x3e\x00\x00")

    def test_truncated_message_raises_need_more_data(self):
        encoded = Subscribe(request_id=1, track_alias=1, full_track_name=_track()).encode()
        with pytest.raises(NeedMoreData):
            decode_control_message(encoded[:5])

    def test_control_stream_parser_handles_fragmentation(self):
        first = SubscribeOk(request_id=2, content_exists=False)
        second = Unsubscribe(request_id=2)
        stream_bytes = first.encode() + second.encode()
        parser = ControlStreamParser()
        messages = []
        for index in range(0, len(stream_bytes), 3):
            messages.extend(parser.feed(stream_bytes[index: index + 3]))
        assert [type(m) for m in messages] == [SubscribeOk, Unsubscribe]


class TestObjectModel:
    def test_track_state_enforces_identical_payload_per_location(self):
        state = TrackState(_track())
        state.publish(MoqtObject(group_id=1, object_id=0, payload=b"v1"))
        state.publish(MoqtObject(group_id=1, object_id=0, payload=b"v1"))
        with pytest.raises(ValueError):
            state.publish(MoqtObject(group_id=1, object_id=0, payload=b"different"))

    def test_track_state_largest_and_ranges(self):
        state = TrackState(_track())
        for version in (1, 2, 5):
            state.publish(MoqtObject(group_id=version, object_id=0, payload=f"v{version}".encode()))
        assert state.largest == Location(5, 0)
        objects = state.objects_in_range(Location(2, 0))
        assert [obj.group_id for obj in objects] == [2, 5]
        assert [obj.group_id for obj in state.latest_objects(2)] == [2, 5]

    def test_track_state_retention_limit(self):
        state = TrackState(_track(), max_retained_groups=3)
        for version in range(1, 11):
            state.publish(MoqtObject(group_id=version, object_id=0, payload=b"x"))
        assert len(state) == 3
        assert state.get(Location(1, 0)) is None
        assert state.get(Location(10, 0)) is not None

    def test_location_ordering(self):
        assert Location(1, 0) < Location(2, 0)
        assert Location(2, 0) < Location(2, 1)
        assert Location(1, 5).next_group() == Location(2, 0)


class TestDataStreamEncodings:
    def test_subgroup_stream_roundtrip(self):
        header = SubgroupStreamHeader(track_alias=3, group_id=9, subgroup_id=0, publisher_priority=100)
        obj = MoqtObject(group_id=9, object_id=0, payload=b"dns-response", publisher_priority=100)
        stream_bytes = header.encode() + encode_subgroup_object(obj)
        parser = DataStreamParser()
        objects = parser.feed(stream_bytes, fin=True)
        assert isinstance(parser.header, SubgroupStreamHeader)
        assert parser.header.track_alias == 3
        assert objects == [obj]
        assert parser.finished

    def test_fetch_stream_roundtrip_multiple_objects(self):
        header = FetchStreamHeader(request_id=12)
        objects = [
            MoqtObject(group_id=1, object_id=0, payload=b"old"),
            MoqtObject(group_id=2, object_id=0, payload=b"new"),
        ]
        stream_bytes = header.encode() + b"".join(encode_fetch_object(obj) for obj in objects)
        parser = DataStreamParser()
        decoded = parser.feed(stream_bytes, fin=True)
        assert decoded == objects
        assert isinstance(parser.header, FetchStreamHeader)

    def test_parser_handles_partial_chunks(self):
        header = SubgroupStreamHeader(track_alias=1, group_id=2)
        obj = MoqtObject(group_id=2, object_id=0, payload=b"abcdefghij")
        stream_bytes = header.encode() + encode_subgroup_object(obj)
        parser = DataStreamParser()
        collected = []
        for index in range(0, len(stream_bytes), 4):
            collected.extend(parser.feed(stream_bytes[index: index + 4], fin=False))
        assert collected == [obj]

    def test_unknown_stream_type_rejected(self):
        parser = DataStreamParser()
        with pytest.raises(ProtocolViolation):
            parser.feed(b"\x3f\x01", fin=False)

    def test_object_datagram_roundtrip(self):
        obj = MoqtObject(group_id=4, object_id=0, payload=b"dgram-payload")
        alias, decoded = decode_object_datagram(encode_object_datagram(7, obj))
        assert alias == 7
        assert decoded.payload == b"dgram-payload"
        assert decoded.group_id == 4

    def test_object_status_preserved(self):
        obj = MoqtObject(group_id=1, object_id=0, payload=b"", status=ObjectStatus.END_OF_TRACK)
        header = SubgroupStreamHeader(track_alias=1, group_id=1)
        parser = DataStreamParser()
        decoded = parser.feed(header.encode() + encode_subgroup_object(obj), fin=True)
        assert decoded[0].status == ObjectStatus.END_OF_TRACK
