"""Property-based tests (hypothesis) for wire formats and core invariants."""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.core.encapsulation import decapsulate_response, encapsulate_response
from repro.core.mapping import DnsQuestionKey, question_to_track, track_to_question
from repro.dns.message import Flags, Message, make_query, make_response
from repro.dns.name import Name
from repro.dns.rdata import AAAARdata, ARdata, TXTRdata
from repro.dns.rr import ResourceRecord, RRset
from repro.dns.types import DNSClass, Opcode, Rcode, RecordType
from repro.measurement.change_rate import count_changes
from repro.moqt.messages import Subscribe, SubscribeOk, decode_control_message
from repro.moqt.track import FullTrackName, TrackNamespace
from repro.quic.frames import StreamFrame, decode_frames, encode_frames
from repro.quic.varint import MAX_VARINT, decode_varint, encode_varint

# ----------------------------------------------------------------- strategies

labels = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=12)
domain_names = st.lists(labels, min_size=1, max_size=5).map(
    lambda parts: Name.from_text(".".join(parts))
)
record_types = st.sampled_from(
    [RecordType.A, RecordType.AAAA, RecordType.HTTPS, RecordType.NS, RecordType.TXT]
)
ipv4_addresses = st.tuples(
    st.integers(1, 254), st.integers(0, 255), st.integers(0, 255), st.integers(1, 254)
).map(lambda parts: ".".join(str(part) for part in parts))


@st.composite
def question_keys(draw):
    return DnsQuestionKey(
        qname=draw(domain_names),
        qtype=draw(record_types),
        qclass=DNSClass.IN,
        opcode=Opcode.QUERY,
        recursion_desired=draw(st.booleans()),
        checking_disabled=draw(st.booleans()),
    )


# ----------------------------------------------------------------- varints


@given(st.integers(min_value=0, max_value=MAX_VARINT))
def test_varint_roundtrip(value):
    encoded = encode_varint(value)
    decoded, consumed = decode_varint(encoded)
    assert decoded == value
    assert consumed == len(encoded)


@given(st.lists(st.integers(min_value=0, max_value=MAX_VARINT), min_size=1, max_size=20))
def test_varint_sequences_decode_in_order(values):
    buffer = b"".join(encode_varint(value) for value in values)
    offset = 0
    decoded = []
    while offset < len(buffer):
        value, offset = decode_varint(buffer, offset)
        decoded.append(value)
    assert decoded == values


# ----------------------------------------------------------------- DNS names


@given(domain_names)
def test_name_wire_roundtrip(name):
    wire = name.to_wire()
    decoded, consumed = Name.from_wire(wire, 0)
    assert decoded == name
    assert consumed == len(wire)


@given(domain_names, domain_names)
def test_name_compression_roundtrip(first, second):
    compress = {}
    buffer = bytearray()
    buffer += first.to_wire(compress, 0)
    second_offset = len(buffer)
    buffer += second.to_wire(compress, second_offset)
    decoded_first, _ = Name.from_wire(bytes(buffer), 0)
    decoded_second, _ = Name.from_wire(bytes(buffer), second_offset)
    assert decoded_first == first
    assert decoded_second == second


@given(domain_names)
def test_subdomain_of_parent_holds(name):
    if not name.is_root and len(name) > 1:
        assert name.is_subdomain_of(name.parent())


# ----------------------------------------------------------------- messages


@given(domain_names, record_types, st.integers(0, 65535), st.booleans())
def test_query_wire_roundtrip(name, rdtype, message_id, rd):
    query = make_query(name, rdtype, message_id=message_id, recursion_desired=rd)
    decoded = Message.from_wire(query.to_wire())
    assert decoded.question.qname == name
    assert decoded.question.qtype == rdtype
    assert decoded.header.message_id == message_id
    assert decoded.header.flags.rd == rd


@given(
    domain_names,
    st.lists(ipv4_addresses, min_size=1, max_size=6, unique=True),
    st.integers(0, 86400),
)
def test_response_wire_roundtrip_preserves_answers(name, addresses, ttl):
    query = make_query(name, RecordType.A, message_id=1)
    records = [
        ResourceRecord(name, RecordType.A, ARdata(address), ttl) for address in addresses
    ]
    response = make_response(query, answers=records, authoritative=True)
    decoded = Message.from_wire(response.to_wire())
    assert sorted(record.rdata.to_text() for record in decoded.answers) == sorted(addresses)
    assert all(record.ttl == ttl for record in decoded.answers)


@given(st.integers(0, 0xFFFF))
def test_flags_roundtrip_through_wire_word(word):
    flags, opcode_value, rcode_value = None, (word >> 11) & 0xF, word & 0xF
    try:
        flags, opcode, rcode = Flags.from_int(word)
    except ValueError:
        return  # unknown opcode/rcode values are out of scope
    # Re-encoding must preserve the bits this implementation models.
    encoded = flags.to_int(opcode, rcode)
    kept_mask = (1 << 15) | (0xF << 11) | (1 << 10) | (1 << 9) | (1 << 8) | (1 << 7) | (1 << 5) | (1 << 4) | 0xF
    assert encoded & kept_mask == word & kept_mask


# ----------------------------------------------------------- question mapping


@given(question_keys())
def test_question_track_mapping_is_bijective(key):
    track = question_to_track(key)
    assert track_to_question(track) == key
    assert track.encoded_length() <= 4096


@given(question_keys(), question_keys())
def test_distinct_questions_map_to_distinct_tracks(first, second):
    if first != second:
        assert question_to_track(first) != question_to_track(second)


# ------------------------------------------------------------- encapsulation


@given(
    question_keys(),
    st.lists(ipv4_addresses, min_size=0, max_size=4, unique=True),
    st.integers(min_value=0, max_value=2**40),
)
def test_encapsulation_roundtrip(key, addresses, version):
    query = make_query(key.qname, key.qtype, message_id=999)
    records = [
        ResourceRecord(key.qname, RecordType.A, ARdata(address), 300) for address in addresses
    ]
    response = make_response(query, answers=records)
    obj = encapsulate_response(response, version)
    assert obj.group_id == version
    assert obj.object_id == 0
    decoded = decapsulate_response(obj)
    assert decoded.header.message_id == 0
    assert sorted(r.rdata.to_text() for r in decoded.answers) == sorted(addresses)


# ------------------------------------------------------------ MoQT messages


@given(
    st.integers(0, 1 << 20),
    st.integers(0, 1 << 20),
    question_keys(),
    st.integers(0, 255),
)
def test_subscribe_message_roundtrip(request_id, track_alias, key, priority):
    message = Subscribe(
        request_id=request_id,
        track_alias=track_alias,
        full_track_name=question_to_track(key),
        subscriber_priority=priority,
    )
    decoded, _ = decode_control_message(message.encode())
    assert decoded == message


@given(st.integers(0, 1 << 30), st.integers(0, 1 << 30), st.booleans())
def test_subscribe_ok_roundtrip(request_id, largest_group, content_exists):
    message = SubscribeOk(
        request_id=request_id,
        content_exists=content_exists,
        largest_group_id=largest_group if content_exists else 0,
    )
    decoded, _ = decode_control_message(message.encode())
    assert decoded == message


@given(st.binary(max_size=512), st.integers(0, 1 << 20), st.integers(0, 1 << 10), st.booleans())
def test_stream_frame_roundtrip(data, stream_id, offset, fin):
    frames = [StreamFrame(stream_id=stream_id, offset=offset, data=data, fin=fin)]
    assert decode_frames(encode_frames(frames)) == frames


# ------------------------------------------------------- measurement invariants


@given(
    st.lists(
        st.lists(ipv4_addresses, min_size=1, max_size=4, unique=True), min_size=1, max_size=40
    )
)
def test_change_count_invariants(samples):
    changes = count_changes(samples)
    assert 0 <= changes <= len(samples) - 1
    # Permuting each sample must not alter the count (lexicographic ordering).
    permuted = [list(reversed(sample)) for sample in samples]
    assert count_changes(permuted) == changes


@given(st.lists(st.lists(ipv4_addresses, min_size=1, max_size=4), min_size=2, max_size=20))
def test_identical_consecutive_samples_count_zero(samples):
    duplicated = []
    for sample in samples:
        duplicated.append(sample)
        duplicated.append(list(sample))
    assert count_changes([duplicated[0]] + [duplicated[0]] * 3) == 0
