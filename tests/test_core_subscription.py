"""Tests for subscription tracking, teardown policies and the session manager."""

from __future__ import annotations

import pytest

from repro.core.mapping import DnsQuestionKey
from repro.core.session_manager import SessionManagerConfig, UpstreamSessionManager
from repro.core.subscription import (
    AdaptivePolicy,
    IdleTimeoutPolicy,
    LruBudgetPolicy,
    NeverTearDown,
    SubscriptionRegistry,
    TrackedSubscription,
)
from repro.dns.name import Name
from repro.dns.types import RecordType
from repro.moqt.session import MoqtSession
from repro.moqt.track import FullTrackName
from repro.netsim.link import LinkConfig
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.quic.endpoint import QuicEndpoint
from repro.quic.tls import ServerTlsContext


def _key(index: int) -> DnsQuestionKey:
    return DnsQuestionKey(Name.from_text(f"d{index}.example."), RecordType.A)


class TestRegistry:
    def test_record_lookup_creates_and_updates(self):
        registry = SubscriptionRegistry()
        first = registry.record_lookup(_key(1), now=0.0)
        again = registry.record_lookup(_key(1), now=5.0)
        assert first is again
        assert again.lookups == 2
        assert registry.state_size() == 1

    def test_record_update_tracks_group_ids(self):
        registry = SubscriptionRegistry()
        registry.record_lookup(_key(1), now=0.0)
        registry.record_update(_key(1), now=1.0, group_id=4)
        registry.record_update(_key(1), now=2.0, group_id=9)
        registry.record_update(_key(1), now=3.0, group_id=7)  # stale, ignored for max
        assert registry.get(_key(1)).last_group_id == 9
        assert registry.last_known_group(_key(1)) == 9

    def test_teardown_keeps_last_known_group_for_resumption(self):
        registry = SubscriptionRegistry(IdleTimeoutPolicy(idle_timeout=10.0))
        registry.record_lookup(_key(1), now=0.0)
        registry.record_update(_key(1), now=1.0, group_id=5)
        victims = registry.collect_victims(now=100.0)
        assert [victim.key for victim in victims] == [_key(1)]
        assert registry.state_size() == 0
        assert registry.last_known_group(_key(1)) == 5
        resumed = registry.record_lookup(_key(1), now=101.0)
        assert resumed.last_group_id == 5
        assert registry.statistics.resumptions == 1

    def test_statistics_counters(self):
        registry = SubscriptionRegistry(IdleTimeoutPolicy(idle_timeout=1.0))
        registry.record_lookup(_key(1), now=0.0)
        registry.record_lookup(_key(2), now=0.5)
        registry.collect_victims(now=100.0)
        assert registry.statistics.tracked == 2
        assert registry.statistics.torn_down == 2


class TestPolicies:
    def _subscriptions(self, count: int, last_lookup: float = 0.0) -> list[TrackedSubscription]:
        return [
            TrackedSubscription(key=_key(i), created_at=0.0, last_lookup_at=last_lookup + i)
            for i in range(count)
        ]

    def test_never_policy_keeps_everything(self):
        assert NeverTearDown().select_victims(self._subscriptions(5), now=1e9) == []

    def test_idle_timeout_selects_only_idle(self):
        policy = IdleTimeoutPolicy(idle_timeout=100.0)
        subscriptions = self._subscriptions(3)
        subscriptions[2].last_lookup_at = 990.0
        victims = policy.select_victims(subscriptions, now=1000.0)
        assert subscriptions[2] not in victims
        assert len(victims) == 2

    def test_lru_budget_evicts_least_recently_used(self):
        policy = LruBudgetPolicy(budget=2)
        subscriptions = self._subscriptions(4)
        victims = policy.select_victims(subscriptions, now=100.0)
        assert [victim.key for victim in victims] == [_key(0), _key(1)]

    def test_adaptive_policy_retains_hot_questions_longer(self):
        policy = AdaptivePolicy(base_retention=10.0, cap=10)
        cold = TrackedSubscription(key=_key(1), created_at=0.0, last_lookup_at=0.0, lookups=1)
        hot = TrackedSubscription(key=_key(2), created_at=0.0, last_lookup_at=0.0, lookups=8)
        victims = policy.select_victims([cold, hot], now=50.0)
        assert cold in victims and hot not in victims
        assert policy.retention_for(hot) == 80.0

    def test_policy_parameter_validation(self):
        with pytest.raises(ValueError):
            IdleTimeoutPolicy(idle_timeout=0)
        with pytest.raises(ValueError):
            LruBudgetPolicy(budget=0)
        with pytest.raises(ValueError):
            AdaptivePolicy(base_retention=0)

    def test_lookup_rate(self):
        subscription = TrackedSubscription(key=_key(1), created_at=0.0, last_lookup_at=0.0)
        subscription.record_lookup(10.0)
        assert subscription.lookup_rate(now=10.0) == pytest.approx(0.2)


class TestSessionManager:
    def _build(self, config: SessionManagerConfig | None = None):
        simulator = Simulator(seed=5)
        network = Network(simulator)
        network.add_host("1.1.1.1")
        network.add_host("2.2.2.2")
        network.connect("1.1.1.1", "2.2.2.2", LinkConfig(delay=0.01))

        def on_connection(connection):
            MoqtSession(connection, is_client=False)

        QuicEndpoint(
            network.host("2.2.2.2"),
            port=4443,
            server_tls=ServerTlsContext(alpn_protocols=("moq-00",)),
            on_connection=on_connection,
        )
        manager = UpstreamSessionManager(network.host("1.1.1.1"), config=config)
        return simulator, manager

    def test_sessions_are_reused(self):
        simulator, manager = self._build()
        upstream = Address("2.2.2.2", 4443)
        first = manager.get_session(upstream)
        simulator.run(until=1.0)
        second = manager.get_session(upstream)
        assert first is second
        assert manager.statistics.sessions_created == 1
        assert manager.statistics.sessions_reused == 1
        assert manager.session_count() == 1

    def test_closed_sessions_are_replaced_with_0rtt(self):
        simulator, manager = self._build()
        upstream = Address("2.2.2.2", 4443)
        first = manager.get_session(upstream)
        simulator.run(until=1.0)
        manager.close_session(upstream)
        simulator.run(until=2.0)
        second = manager.get_session(upstream)
        simulator.run(until=3.0)
        assert second is not first
        assert manager.statistics.zero_rtt_attempts == 1
        assert second.connection.used_0rtt

    def test_reuse_can_be_disabled(self):
        simulator, manager = self._build(SessionManagerConfig(reuse_sessions=False))
        upstream = Address("2.2.2.2", 4443)
        first = manager.get_session(upstream)
        second = manager.get_session(upstream)
        assert first is not second
        assert manager.statistics.sessions_created == 2

    def test_state_summary_counts_open_sessions(self):
        simulator, manager = self._build()
        manager.get_session(Address("2.2.2.2", 4443))
        simulator.run(until=1.0)
        summary = manager.state_summary()
        assert summary["open_sessions"] == 1
        manager.close_all()
        assert manager.state_summary()["open_sessions"] == 0
