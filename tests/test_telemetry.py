"""Tests for the flightdeck telemetry layer.

Covers the metrics registry (idempotent registration, label families, the
zero-cost ``NullMetrics`` default), virtual-time span tracing (sampling,
chain reconstruction, the telescoping-segments invariant), the trace
recorder satellites (O(1) ``count``/``kinds``, lazy materialisation
caching, ``NullTraceRecorder`` listener rejection), collectors, exporters,
and the headline determinism contract: seeded experiment outputs are
bit-identical with telemetry enabled or disabled.
"""

from __future__ import annotations

import json
import tracemalloc

import pytest

from repro.experiments.failure_detection import run_failure_detection
from repro.experiments.relay_churn import run_relay_churn
from repro.experiments.relay_fanout import run_relay_fanout
from repro.moqt.objectmodel import Location
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator
from repro.netsim.trace import NullTraceRecorder, TraceRecorder
from repro.telemetry import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullMetrics,
    SpanTracer,
    Telemetry,
)
from repro.telemetry.collect import collect_network, collect_run, collect_simulator
from repro.telemetry.export import (
    render_metrics_table,
    render_prometheus,
    render_tier_breakdown,
    spans_to_records,
    write_metrics_snapshot,
    write_prometheus,
    write_spans_jsonl,
)


class TestMetricsRegistry:
    def test_counter_inc_and_snapshot(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests", "Total requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.snapshot() == {"requests": 5}

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("hits")
        second = registry.counter("hits")
        assert first is second

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")
        with pytest.raises(MetricError):
            registry.histogram("x")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("labelled", labels=("tier",))
        with pytest.raises(MetricError):
            registry.counter("labelled", labels=("role",))

    def test_counter_rejects_decrease(self):
        counter = MetricsRegistry().counter("mono")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.inc(10)
        gauge.dec(3)
        gauge.set(4)
        assert gauge.value == 4

    def test_labels_cached_per_value_tuple(self):
        registry = MetricsRegistry()
        family = registry.counter("per_tier", labels=("tier",))
        assert family.is_family
        child = family.labels("mid")
        assert family.labels("mid") is child
        assert family.labels("edge") is not child
        child.inc(2)
        assert registry.snapshot() == {"per_tier": {"tier=mid": 2, "tier=edge": 0}}

    def test_family_parent_rejects_direct_inc(self):
        family = MetricsRegistry().counter("fam", labels=("a",))
        with pytest.raises(MetricError):
            family.inc()

    def test_unlabelled_rejects_labels(self):
        counter = MetricsRegistry().counter("plain")
        with pytest.raises(MetricError):
            counter.labels("x")

    def test_wrong_label_arity_raises(self):
        family = MetricsRegistry().counter("fam", labels=("a", "b"))
        with pytest.raises(MetricError):
            family.labels("only-one")

    def test_histogram_percentiles_and_buckets(self):
        hist = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0, float("inf")))
        for value in (0.05, 0.2, 0.5, 2.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(2.75)
        assert hist.percentile(0) == pytest.approx(0.05)
        assert hist.percentile(100) == pytest.approx(2.0)
        assert hist.percentile(50) == pytest.approx(0.35)
        assert hist.bucket_counts() == [(0.1, 1), (1.0, 3), (float("inf"), 4)]
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["min"] == pytest.approx(0.05)
        assert summary["max"] == pytest.approx(2.0)

    def test_collect_preserves_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert [m.name for m in registry.collect()] == ["a", "b", "c"]
        assert [m.kind for m in registry.collect()] == ["counter", "gauge", "histogram"]


class TestNullMetrics:
    def test_singleton_instruments(self):
        null = NullMetrics()
        assert null.counter("a") is null.counter("b")
        assert null.gauge("a") is null.gauge("b")
        assert null.histogram("a") is null.histogram("b")
        assert null.counter("x").labels("anything") is null.counter("x")
        assert not null.enabled
        assert null.collect() == []
        assert null.snapshot() == {}

    def test_null_instruments_record_nothing(self):
        counter = NULL_METRICS.counter("c")
        counter.inc(100)
        counter.set(7)
        assert counter.value == 0
        hist = NULL_METRICS.histogram("h")
        hist.observe(1.0)
        assert hist.count == 0 and hist.samples == []

    def test_disabled_path_allocates_nothing(self):
        """The hot-path cost of disabled telemetry is zero allocations."""
        counter = NULL_METRICS.counter("c")
        gauge = NULL_METRICS.gauge("g")
        hist = NULL_METRICS.histogram("h")
        spins = list(range(1000))
        tracemalloc.start()
        for _ in spins:
            counter.inc()
            counter.labels("tier").inc()
            gauge.set(5)
            hist.observe(1.0)
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert current == 0
        assert peak <= 512  # transient interpreter noise only

    def test_network_defaults_to_disabled_telemetry(self):
        network = Network(Simulator(seed=1))
        assert isinstance(network.telemetry, Telemetry)
        assert not network.telemetry.enabled
        assert network.telemetry.metrics is NULL_METRICS
        assert network.telemetry.spans is None


class TestSpanTracer:
    def _traced_delivery(self) -> SpanTracer:
        """Origin -> mid -> edge -> subscriber with known timestamps."""
        tracer = SpanTracer()
        loc = Location(group_id=2, object_id=0)
        tracer.record_push(loc, 1.0)
        tracer.record_hop(loc, "mid", "relay-mid-0", "origin", 1.02)
        tracer.record_hop(loc, "edge", "relay-edge-0", "relay-mid-0", 1.03)
        tracer.record_delivery(loc, "relay-edge-0", 0, 1.035)
        return tracer

    def test_segments_telescope_to_end_to_end(self):
        tracer = self._traced_delivery()
        (record,) = tracer.delivery_breakdowns()
        assert record["segments"] == pytest.approx(
            {"mid": 0.02, "edge": 0.01, "subscribers": 0.005}
        )
        assert sum(record["segments"].values()) == pytest.approx(record["end_to_end"])
        assert record["end_to_end"] == pytest.approx(0.035)

    def test_tier_breakdown_rows(self):
        rows = self._traced_delivery().tier_breakdown()
        by_tier = {row["tier"]: row for row in rows}
        assert set(by_tier) == {"mid", "edge", "subscribers", "end_to_end"}
        assert by_tier["end_to_end"]["p50_ms"] == pytest.approx(35.0)
        assert by_tier["mid"]["count"] == 1

    def test_group_sampling_stride(self):
        tracer = SpanTracer(sample_every=10)
        for group in range(25):
            tracer.record_push(Location(group_id=group, object_id=0), float(group))
        assert tracer.span_count == 3  # groups 0, 10, 20
        # Hops and deliveries for unsampled groups fall through silently.
        tracer.record_hop(Location(group_id=3, object_id=0), "mid", "r", "o", 3.1)
        tracer.record_delivery(Location(group_id=3, object_id=0), "r", 0, 3.2)
        assert tracer.delivery_count == 0

    def test_subscriber_sampling_stride(self):
        tracer = SpanTracer(subscriber_sample_every=3)
        loc = Location(group_id=0, object_id=0)
        tracer.record_push(loc, 0.0)
        for index in range(9):
            tracer.record_delivery(loc, "leaf", index, 0.5)
        assert tracer.delivery_count == 3  # indices 0, 3, 6

    def test_max_spans_flight_recorder_cap(self):
        tracer = SpanTracer(max_spans=2)
        for group in range(5):
            tracer.record_push(Location(group_id=group, object_id=0), 0.0)
        assert tracer.span_count == 2
        assert tracer.dropped_spans == 3
        tracer.clear()
        assert tracer.span_count == 0 and tracer.dropped_spans == 0

    def test_duplicate_push_keeps_first_timeline(self):
        tracer = SpanTracer()
        loc = Location(group_id=0, object_id=0)
        tracer.record_push(loc, 1.0)
        tracer.record_push(loc, 9.0)
        assert tracer.spans()[0].push_time == 1.0

    def test_first_hop_per_host_wins(self):
        tracer = SpanTracer()
        loc = Location(group_id=0, object_id=0)
        tracer.record_push(loc, 0.0)
        tracer.record_hop(loc, "mid", "relay", "origin", 0.5)
        tracer.record_hop(loc, "mid", "relay", "origin", 0.9)
        assert tracer.spans()[0].hops["relay"] == ("mid", "origin", 0.5)

    def test_unreconstructable_chain_skipped(self):
        """A delivery whose leaf has no hop record yields no breakdown."""
        tracer = SpanTracer()
        loc = Location(group_id=0, object_id=0)
        tracer.record_push(loc, 0.0)
        tracer.record_delivery(loc, "never-forwarded", 0, 1.0)
        assert tracer.delivery_breakdowns() == []

    def test_invalid_strides_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer(sample_every=0)
        with pytest.raises(ValueError):
            SpanTracer(subscriber_sample_every=0)

    def test_summary_shape(self):
        summary = self._traced_delivery().summary()
        assert summary["spans"] == 1
        assert summary["deliveries"] == 1
        assert summary["dropped_spans"] == 0
        assert any(row["tier"] == "end_to_end" for row in summary["tiers"])


class TestTraceRecorderSatellites:
    def test_count_is_incremental(self):
        recorder = TraceRecorder(Simulator(seed=1))
        for _ in range(5):
            recorder.record("datagram-sent", size=10)
        recorder.record("subscribe-ok")
        assert recorder.count("datagram-sent") == 5
        assert recorder.count("subscribe-ok") == 1
        assert recorder.count("missing") == 0
        assert recorder.count() == 6
        # count() must not materialise TraceEvent objects.
        assert recorder._materialized == []

    def test_kinds_in_first_occurrence_order(self):
        recorder = TraceRecorder(Simulator(seed=1))
        recorder.record("b")
        recorder.record("a")
        recorder.record("b")
        assert recorder.kinds() == ["b", "a"]

    def test_lazy_materialisation_is_cached(self):
        recorder = TraceRecorder(Simulator(seed=1))
        recorder.record("first", x=1)
        events_once = recorder.events()
        events_twice = recorder.events()
        assert events_once[0] is events_twice[0]
        recorder.record("second", y=2)
        # Incremental: the old event object survives, only the new one is built.
        assert recorder.events()[0] is events_once[0]
        assert [event.kind for event in recorder.events()] == ["first", "second"]

    def test_clear_resets_counts(self):
        recorder = TraceRecorder(Simulator(seed=1))
        recorder.record("x")
        recorder.clear()
        assert recorder.count("x") == 0
        assert recorder.kinds() == []

    def test_null_recorder_rejects_listeners(self):
        recorder = NullTraceRecorder(Simulator(seed=1))
        with pytest.raises(RuntimeError):
            recorder.subscribe(lambda event: None)

    def test_null_recorder_drops_events(self):
        recorder = NullTraceRecorder(Simulator(seed=1))
        recorder.record("anything")
        assert recorder.count() == 0


class TestCollectors:
    def test_collect_is_noop_when_disabled(self):
        network = Network(Simulator(seed=1))
        collect_run(NULL_METRICS, network)
        assert NULL_METRICS.snapshot() == {}

    def test_collect_simulator_gauges(self):
        simulator = Simulator(seed=1)
        simulator.call_later(1.0, lambda: None)
        simulator.run(until=2.0)
        metrics = MetricsRegistry()
        collect_simulator(metrics, simulator)
        snapshot = metrics.snapshot()
        assert snapshot["sim_virtual_time_seconds"] == pytest.approx(2.0)
        assert snapshot["sim_events_scheduled"] >= 1

    def test_collect_network_scrapes_pool_and_trace(self):
        network = Network(Simulator(seed=1))
        network.trace.record("custom-kind")
        metrics = MetricsRegistry()
        collect_network(metrics, network)
        snapshot = metrics.snapshot()
        assert "pool_datagrams_allocated" in snapshot
        assert "net_datagrams_sent" in snapshot
        assert snapshot["trace_events"] == {"kind=custom-kind": 1}


class TestExporters:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("plain", "A plain counter").inc(3)
        registry.gauge("per_tier", "By tier", labels=("tier",)).labels("mid").set(7)
        hist = registry.histogram("lat", "Latency", buckets=(0.1, float("inf")))
        hist.observe(0.05)
        hist.observe(0.2)
        return registry

    def test_prometheus_exposition(self):
        text = render_prometheus(self._registry())
        assert "# HELP plain A plain counter" in text
        assert "# TYPE plain counter" in text
        assert "plain 3" in text
        assert 'per_tier{tier="mid"} 7' in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 0.25" in text
        assert "lat_count 2" in text

    def test_prometheus_label_escaping(self):
        registry = MetricsRegistry()
        registry.gauge("g", labels=("name",)).labels('a"b\\c\nd').set(1)
        text = render_prometheus(registry)
        assert 'g{name="a\\"b\\\\c\\nd"} 1' in text

    def test_write_prometheus(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(self._registry(), path)
        assert "plain 3" in path.read_text()

    def test_spans_jsonl_roundtrip(self, tmp_path):
        tracer = SpanTracer()
        loc = Location(group_id=0, object_id=0)
        tracer.record_push(loc, 1.0)
        tracer.record_hop(loc, "mid", "relay", "origin", 1.5)
        tracer.record_delivery(loc, "relay", 4, 2.0)
        path = tmp_path / "spans.jsonl"
        assert write_spans_jsonl(tracer, path) == 1
        (record,) = [json.loads(line) for line in path.read_text().splitlines()]
        assert record == spans_to_records(tracer)[0]
        assert record["location"] == [0, 0]
        assert record["hops"] == [
            {"host": "relay", "tier": "mid", "upstream": "origin", "time": 1.5}
        ]
        assert record["deliveries"] == [{"leaf": "relay", "subscriber": 4, "time": 2.0}]

    def test_metrics_snapshot_file(self, tmp_path):
        path = tmp_path / "snapshot.json"
        tracer = SpanTracer()
        written = write_metrics_snapshot(self._registry(), path, spans=tracer)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(written))
        assert loaded["metrics"]["plain"] == 3
        assert loaded["spans"]["spans"] == 0

    def test_tables_render(self):
        table = render_metrics_table(self._registry())
        assert "plain" in table and "tier=mid" in table
        assert render_metrics_table(MetricsRegistry()) == "(no metrics recorded)"
        assert render_tier_breakdown(SpanTracer()) == "(no sampled deliveries)"


def _fanout_fingerprint(result):
    return [
        (
            sample.subscribers,
            sample.measured_origin_objects,
            sample.measured_tier_bytes,
            sample.measured_tier_objects,
            sample.delivered_objects,
            sample.events_scheduled,
        )
        for sample in result.samples
    ]


class TestDeterminismContract:
    """Seeded outputs must be bit-identical with telemetry on or off."""

    def test_e11_identical_with_telemetry(self):
        baseline = run_relay_fanout(subscriber_counts=(10, 100))
        telemetry = Telemetry(metrics=MetricsRegistry(), spans=SpanTracer())
        traced = run_relay_fanout(subscriber_counts=(10, 100), telemetry=telemetry)
        assert _fanout_fingerprint(baseline) == _fanout_fingerprint(traced)
        # The E11 acceptance canaries (see ROADMAP): 20 origin objects and
        # 6560 origin-egress bytes, independent of subscriber count.
        first = baseline.samples[0]
        assert first.measured_origin_objects == 20
        assert first.measured_tier_bytes[0] == 6560

    def test_e11_breakdowns_telescope(self):
        telemetry = Telemetry(metrics=MetricsRegistry(), spans=SpanTracer())
        run_relay_fanout(subscriber_counts=(10,), telemetry=telemetry)
        breakdowns = telemetry.spans.delivery_breakdowns()
        assert breakdowns
        for record in breakdowns:
            assert sum(record["segments"].values()) == pytest.approx(
                record["end_to_end"], abs=1e-12
            )

    def test_e11_metrics_collected(self):
        telemetry = Telemetry(metrics=MetricsRegistry(), spans=SpanTracer())
        result = run_relay_fanout(subscriber_counts=(10,), telemetry=telemetry)
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["relaynet_subscribers"] == 10
        assert (
            snapshot["relaynet_subscriber_objects_delivered"]
            == result.samples[-1].delivered_objects
        )
        assert result.samples[-1].latency is not None
        assert result.samples[-1].pool_counters is not None

    def test_e12_identical_with_telemetry(self):
        baseline = run_relay_churn(subscribers=200)
        telemetry = Telemetry(
            metrics=MetricsRegistry(), spans=SpanTracer(subscriber_sample_every=7)
        )
        traced = run_relay_churn(subscribers=200, telemetry=telemetry)
        assert baseline.delivery_sequences == traced.delivery_sequences
        assert [
            (kill.killed, kill.at, kill.latencies_by_tier) for kill in baseline.kills
        ] == [(kill.killed, kill.at, kill.latencies_by_tier) for kill in traced.kills]
        assert baseline.gapless and traced.gapless
        assert telemetry.metrics.snapshot()["relaynet_subscriber_reattaches"] > 0

    def test_e13_identical_with_telemetry(self):
        baseline = run_failure_detection(subscribers=200)
        telemetry = Telemetry(
            metrics=MetricsRegistry(), spans=SpanTracer(subscriber_sample_every=7)
        )
        traced = run_failure_detection(subscribers=200, telemetry=telemetry)
        assert [
            (s.killed, s.detected_via, s.detection_latency) for s in baseline.samples
        ] == [(s.killed, s.detected_via, s.detection_latency) for s in traced.samples]
        assert baseline.delivery_sequences == traced.delivery_sequences
        assert baseline.delivered_objects == traced.delivered_objects
        # The E13 acceptance canary: PTO-path detection at 544.277 ms.
        assert round(baseline.samples[0].detection_latency * 1000, 3) == 544.277
