"""Tests for the discrete-event simulator core."""

from __future__ import annotations

import pytest

from repro.netsim.simulator import PeriodicTask, SimulationError, Simulator, Timer, format_time


class TestSimulatorScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_call_later_advances_clock_to_event_time(self):
        simulator = Simulator()
        seen = []
        simulator.call_later(1.5, lambda: seen.append(simulator.now))
        simulator.run_until_idle()
        assert seen == [1.5]
        assert simulator.now == 1.5

    def test_events_fire_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.call_later(2.0, lambda: order.append("late"))
        simulator.call_later(1.0, lambda: order.append("early"))
        simulator.run_until_idle()
        assert order == ["early", "late"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        simulator = Simulator()
        order = []
        for label in ("first", "second", "third"):
            simulator.call_at(1.0, lambda label=label: order.append(label))
        simulator.run_until_idle()
        assert order == ["first", "second", "third"]

    def test_cancelled_event_does_not_fire(self):
        simulator = Simulator()
        seen = []
        event = simulator.call_later(1.0, lambda: seen.append("fired"))
        event.cancel()
        simulator.run_until_idle()
        assert seen == []

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().call_later(-0.1, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        simulator = Simulator()
        simulator.call_later(1.0, lambda: None)
        simulator.run_until_idle()
        with pytest.raises(SimulationError):
            simulator.call_at(0.5, lambda: None)

    def test_run_until_stops_before_later_events(self):
        simulator = Simulator()
        seen = []
        simulator.call_later(1.0, lambda: seen.append(1.0))
        simulator.call_later(5.0, lambda: seen.append(5.0))
        simulator.run(until=2.0)
        assert seen == [1.0]
        assert simulator.now == 2.0
        simulator.run_until_idle()
        assert seen == [1.0, 5.0]

    def test_events_scheduled_during_run_execute(self):
        simulator = Simulator()
        seen = []

        def outer():
            simulator.call_later(1.0, lambda: seen.append("inner"))

        simulator.call_later(1.0, outer)
        simulator.run_until_idle()
        assert seen == ["inner"]
        assert simulator.now == 2.0

    def test_max_events_bound(self):
        simulator = Simulator()

        def reschedule():
            simulator.call_later(0.1, reschedule)

        simulator.call_later(0.1, reschedule)
        executed = simulator.run(max_events=25)
        assert executed == 25

    def test_pending_events_counts_uncancelled(self):
        simulator = Simulator()
        event = simulator.call_later(1.0, lambda: None)
        simulator.call_later(2.0, lambda: None)
        assert simulator.pending_events == 2
        event.cancel()
        assert simulator.pending_events == 1

    def test_rng_is_deterministic_per_seed(self):
        values_a = [Simulator(seed=9).rng.random() for _ in range(3)]
        values_b = [Simulator(seed=9).rng.random() for _ in range(3)]
        assert values_a == values_b

    def test_advance_runs_due_events(self):
        simulator = Simulator()
        seen = []
        simulator.call_later(0.5, lambda: seen.append("x"))
        simulator.advance(1.0)
        assert seen == ["x"]
        assert simulator.now == 1.0


class TestTimer:
    def test_fires_after_delay(self):
        simulator = Simulator()
        fired = []
        timer = Timer(simulator, lambda: fired.append(simulator.now))
        timer.start(2.0)
        simulator.run_until_idle()
        assert fired == [2.0]

    def test_stop_prevents_firing(self):
        simulator = Simulator()
        fired = []
        timer = Timer(simulator, lambda: fired.append(True))
        timer.start(2.0)
        timer.stop()
        simulator.run_until_idle()
        assert fired == []

    def test_restart_replaces_deadline(self):
        simulator = Simulator()
        fired = []
        timer = Timer(simulator, lambda: fired.append(simulator.now))
        timer.start(2.0)
        timer.start(5.0)
        simulator.run_until_idle()
        assert fired == [5.0]

    def test_is_running_reflects_state(self):
        simulator = Simulator()
        timer = Timer(simulator, lambda: None)
        assert not timer.is_running
        timer.start(1.0)
        assert timer.is_running
        assert timer.deadline == 1.0
        simulator.run_until_idle()
        assert not timer.is_running


class TestPeriodicTask:
    def test_fires_repeatedly_until_stopped(self):
        simulator = Simulator()
        fired = []
        task = PeriodicTask(simulator, 1.0, lambda: fired.append(simulator.now))
        task.start()
        simulator.run(until=3.5)
        task.stop()
        simulator.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_invalid_interval_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Simulator(), 0.0, lambda: None)

    def test_initial_delay_overrides_first_interval(self):
        simulator = Simulator()
        fired = []
        task = PeriodicTask(simulator, 5.0, lambda: fired.append(simulator.now))
        task.start(initial_delay=1.0)
        simulator.run(until=7.0)
        assert fired == [1.0, 6.0]


def test_format_time_renders_ms_and_seconds():
    assert format_time(0.010) == "10.000ms"
    assert format_time(2.0) == "2.000s"
