"""Tests for DNS message encoding, decoding and builders."""

from __future__ import annotations

import pytest

from repro.dns.message import (
    Flags,
    Header,
    Message,
    MessageError,
    Question,
    make_query,
    make_response,
    response_with_rrset,
)
from repro.dns.name import Name
from repro.dns.rdata import ARdata, CNAMERdata, SOARdata
from repro.dns.rr import ResourceRecord, RRset
from repro.dns.types import DNSClass, Opcode, Rcode, RecordType


def _a_record(name: str, address: str, ttl: int = 300) -> ResourceRecord:
    return ResourceRecord(Name.from_text(name), RecordType.A, ARdata(address), ttl)


class TestFlagsAndHeader:
    def test_flags_roundtrip_through_int(self):
        flags = Flags(qr=True, aa=True, rd=True, ra=True, cd=True)
        value = flags.to_int(Opcode.QUERY, Rcode.NXDOMAIN)
        decoded, opcode, rcode = Flags.from_int(value)
        assert decoded == flags
        assert opcode == Opcode.QUERY
        assert rcode == Rcode.NXDOMAIN

    def test_opcode_bits_preserved(self):
        value = Flags().to_int(Opcode.UPDATE, Rcode.NOERROR)
        _, opcode, _ = Flags.from_int(value)
        assert opcode == Opcode.UPDATE

    def test_header_too_short_rejected(self):
        with pytest.raises(MessageError):
            Header.from_wire(b"\x00" * 5)


class TestMessageWireFormat:
    def test_query_roundtrip(self):
        query = make_query("www.example.com", "A", message_id=4711)
        decoded = Message.from_wire(query.to_wire())
        assert decoded.header.message_id == 4711
        assert decoded.question.qname == Name.from_text("www.example.com")
        assert decoded.question.qtype == RecordType.A
        assert decoded.question.qclass == DNSClass.IN
        assert not decoded.is_response

    def test_response_roundtrip_with_all_sections(self):
        query = make_query("www.example.com", "A", message_id=9)
        soa = ResourceRecord(
            Name.from_text("example.com"),
            RecordType.SOA,
            SOARdata(Name.from_text("ns1.example.com"), Name.from_text("admin.example.com"), 3),
            300,
        )
        response = make_response(
            query,
            answers=[_a_record("www.example.com", "192.0.2.1")],
            authorities=[soa],
            additionals=[_a_record("ns1.example.com", "192.0.2.53")],
            authoritative=True,
        )
        decoded = Message.from_wire(response.to_wire())
        assert decoded.is_response
        assert decoded.header.flags.aa
        assert len(decoded.answers) == 1
        assert len(decoded.authorities) == 1
        assert len(decoded.additionals) == 1
        assert decoded.answers[0].rdata == ARdata("192.0.2.1")

    def test_compression_shrinks_message(self):
        query = make_query("www.example.com", "A")
        response = make_response(
            query,
            answers=[
                _a_record("www.example.com", "192.0.2.1"),
                _a_record("www.example.com", "192.0.2.2"),
            ],
        )
        wire = response.to_wire()
        # The owner name appears three times logically; compression should
        # keep the message well below three full copies of the name.
        assert len(wire) < 12 + 21 + 3 * (17 + 14)
        assert Message.from_wire(wire).answers[1].name == Name.from_text("www.example.com")

    def test_message_id_mirrored_in_response(self):
        query = make_query("a.example.", "AAAA", message_id=77)
        response = make_response(query, rcode=Rcode.NXDOMAIN)
        assert response.header.message_id == 77
        assert response.rcode == Rcode.NXDOMAIN
        assert response.questions == query.questions

    def test_rd_and_cd_flags_copied_from_query(self):
        query = make_query("a.example.", "A", recursion_desired=False, checking_disabled=True)
        response = make_response(query)
        assert response.header.flags.rd is False
        assert response.header.flags.cd is True

    def test_question_accessor_requires_question(self):
        with pytest.raises(MessageError):
            Message().question


class TestMessageHelpers:
    def test_answer_rrset_collects_matching_type(self):
        query = make_query("www.example.com", "A")
        response = make_response(
            query,
            answers=[
                ResourceRecord(
                    Name.from_text("www.example.com"),
                    RecordType.CNAME,
                    CNAMERdata(Name.from_text("cdn.example.net")),
                    300,
                ),
                _a_record("www.example.com", "192.0.2.1"),
            ],
        )
        rrset = response.answer_rrset(RecordType.A)
        assert rrset is not None and len(rrset) == 1
        assert response.answer_rrset(RecordType.AAAA) is None

    def test_response_with_rrset(self):
        query = make_query("www.example.com", "A")
        rrset = RRset(
            Name.from_text("www.example.com"),
            RecordType.A,
            [_a_record("www.example.com", "192.0.2.7")],
        )
        response = response_with_rrset(query, rrset)
        assert [record.rdata.to_text() for record in response.answers] == ["192.0.2.7"]

    def test_to_text_contains_sections(self):
        query = make_query("www.example.com", "A")
        response = make_response(query, answers=[_a_record("www.example.com", "192.0.2.1")])
        text = response.to_text()
        assert "QUESTION SECTION" in text and "ANSWER SECTION" in text

    def test_size_matches_wire_length(self):
        query = make_query("www.example.com", "HTTPS")
        assert query.size == len(query.to_wire())


class TestRRsetSemantics:
    def test_rrset_rejects_foreign_records(self):
        rrset = RRset(Name.from_text("a.example."), RecordType.A)
        with pytest.raises(ValueError):
            rrset.add(_a_record("b.example.", "192.0.2.1"))

    def test_rrset_equality_ignores_order(self):
        records = [
            _a_record("a.example.", "192.0.2.1"),
            _a_record("a.example.", "192.0.2.2"),
        ]
        first = RRset(Name.from_text("a.example."), RecordType.A, records)
        second = RRset(Name.from_text("a.example."), RecordType.A, list(reversed(records)))
        assert first == second
        assert first.sorted_rdata_texts() == second.sorted_rdata_texts()

    def test_rrset_ttl_is_minimum(self):
        rrset = RRset(
            Name.from_text("a.example."),
            RecordType.A,
            [_a_record("a.example.", "192.0.2.1", ttl=60), _a_record("a.example.", "192.0.2.2", ttl=600)],
        )
        assert rrset.ttl == 60
        assert rrset.with_ttl(10).ttl == 10

    def test_duplicate_records_not_added_twice(self):
        record = _a_record("a.example.", "192.0.2.1")
        rrset = RRset(Name.from_text("a.example."), RecordType.A, [record, record])
        assert len(rrset) == 1

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            _a_record("a.example.", "192.0.2.1", ttl=-1)
