"""Tests for the experiment drivers: each must reproduce the paper's shape."""

from __future__ import annotations

import pytest

from repro.dns.types import RecordType
from repro.experiments.compatibility import run_compatibility
from repro.experiments.fig1a import PAPER_TOTALS, run_fig1a
from repro.experiments.fig1b import run_fig1b
from repro.experiments.fig2_sequence import run_fig2
from repro.experiments.query_latency import run_query_latency
from repro.experiments.report import format_mapping, format_table
from repro.experiments.staleness import run_staleness
from repro.experiments.state_overhead import run_state_overhead
from repro.experiments.topology import SmallTopology, SmallTopologyConfig
from repro.experiments.traffic import run_traffic
from repro.experiments.usecases import PAPER_CDN_STUB_KBPS, PAPER_DDNS_GBPS, run_usecases


class TestReportFormatting:
    def test_format_table_aligns_columns(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "longer"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_mapping(self):
        text = format_mapping({"key": 1.5}, title="Title")
        assert "Title" in text and "key" in text


class TestFig1aExperiment:
    def test_totals_match_paper_fractions(self):
        result = run_fig1a(population=3000)
        for row in result.total_rows():
            assert abs(row["measured_fraction"] - row["paper_fraction"]) < 0.04
        assert result.https_share_at_300() > 0.85

    def test_ttl_histograms_cover_observed_clusters(self):
        result = run_fig1a(population=1500)
        a_histogram = result.distribution.histograms[RecordType.A]
        assert set(a_histogram) <= {10, 20, 60, 300, 600, 1200, 3600}
        assert max(a_histogram, key=a_histogram.get) == 300


class TestFig1bExperiment:
    def test_change_rate_shape_matches_paper(self):
        result = run_fig1b(population=800, observations=300, max_domains_per_ttl=50)
        assert result.matches_paper_shape()
        assert result.low_ttl_p90_minimum() >= 71
        assert result.high_ttl_p90_maximum() == 0

    def test_rows_cover_low_and_high_ttls(self):
        result = run_fig1b(population=600, observations=120, max_domains_per_ttl=40)
        ttls = [row["ttl"] for row in result.rows()]
        assert any(ttl <= 300 for ttl in ttls)
        assert any(ttl >= 600 for ttl in ttls)


class TestFig2Experiment:
    def test_lookup_sequence_structure(self):
        result = run_fig2()
        assert result.upstream_subscribe_fetch_operations == 3
        assert result.answer_addresses == ["192.0.2.10"]
        actors = {step.actor for step in result.steps}
        assert {"stub", "recursive", "auth"} <= actors
        assert result.push_latency is not None
        assert result.push_latency < 0.1
        assert result.lookup_latency == pytest.approx(0.39, abs=1e-6)


class TestQueryLatencyExperiment:
    def test_all_scenarios_match_round_trip_model(self):
        result = run_query_latency(stub_rtt=0.010, upstream_rtt=0.040)
        for measurement in result.measurements:
            assert measurement.relative_error < 0.02, measurement.scenario

    def test_scenario_ordering_matches_paper(self):
        result = run_query_latency(stub_rtt=0.010, upstream_rtt=0.040)
        cold = result.measurement("moqt-cold").measured
        resumed = result.measurement("moqt-0rtt").measured
        reused = result.measurement("moqt-reused").measured
        udp = result.measurement("udp-first").measured
        pushed = result.measurement("moqt-pushed").measured
        assert cold > resumed > reused
        assert reused == pytest.approx(udp)
        assert pushed == 0.0


@pytest.mark.slow
class TestStalenessExperiment:
    def test_pubsub_beats_polling_by_orders_of_magnitude(self):
        result = run_staleness(ttls=[10, 60], change_offsets=[0.5])
        for sample in result.samples:
            assert sample.pubsub_staleness < 0.1
            assert sample.polling_staleness > sample.pubsub_staleness
        assert result.mean_improvement(60) > 50

    def test_pubsub_staleness_independent_of_ttl(self):
        result = run_staleness(ttls=[10, 60], change_offsets=[0.25])
        values = [sample.pubsub_staleness for sample in result.samples]
        assert max(values) - min(values) < 0.01


@pytest.mark.slow
class TestTrafficExperiment:
    def test_pubsub_wins_when_changes_are_rarer_than_ttl(self):
        result = run_traffic(configurations=[(10, 120.0)], duration=240.0)
        sample = result.samples[0]
        assert sample.measured_pubsub_messages < sample.measured_polling_queries
        assert sample.measured_reduction_factor > 2

    def test_polling_wins_for_hot_records_with_long_ttl(self):
        result = run_traffic(configurations=[(300, 30.0)], duration=300.0)
        sample = result.samples[0]
        assert sample.measured_pubsub_messages > sample.measured_polling_queries

    def test_measured_counts_close_to_model(self):
        result = run_traffic(configurations=[(10, 60.0)], duration=240.0)
        sample = result.samples[0]
        assert abs(sample.measured_polling_queries - sample.model.polling) <= 2
        assert abs(sample.measured_pubsub_messages - sample.model.pubsub) <= 1


class TestUseCaseExperiment:
    def test_closed_form_estimates_match_paper(self):
        result = run_usecases(simulated_duration=20.0, simulated_update_interval=5.0)
        assert result.ddns.gbps == pytest.approx(PAPER_DDNS_GBPS, rel=0.05)
        assert result.cdn_stub.kbps == pytest.approx(PAPER_CDN_STUB_KBPS, rel=0.01)

    def test_simulation_cross_check_agrees_with_formula(self):
        result = run_usecases(simulated_duration=30.0, simulated_update_interval=5.0)
        assert result.cdn_simulation_relative_error < 0.05
        assert result.simulated_cdn_update_bytes > 0


class TestStateOverheadExperiment:
    def test_policies_trade_state_for_resubscriptions(self):
        result = run_state_overhead(questions=150, duration=3600.0)
        by_name = {outcome.policy: outcome for outcome in result.policies}
        assert by_name["never"].tracked_at_end == 150
        assert by_name["never"].forced_resubscriptions == 0
        assert by_name["lru-budget"].tracked_at_end <= 150 // 4 + 1
        for name, outcome in by_name.items():
            if name != "never":
                assert outcome.state_bytes <= by_name["never"].state_bytes
        assert result.classic_vs_moqt["extra_bytes"] > 0

    def test_rows_render(self):
        result = run_state_overhead(questions=50, duration=600.0)
        assert len(result.rows()) == 4


@pytest.mark.slow
class TestCompatibilityExperiment:
    def test_fallback_resolves_and_refresh_delivers_updates(self):
        result = run_compatibility(ttl=10)
        baseline = result.outcome("moqt-everywhere (baseline)")
        decline = result.outcome("decline (auth UDP-only)")
        refresh = result.outcome("periodic-refresh (auth UDP-only)")
        assert baseline.resolved and decline.resolved and refresh.resolved
        assert decline.answer_via_udp_fallback and refresh.answer_via_udp_fallback
        assert baseline.update_delivered and refresh.update_delivered
        assert not decline.update_delivered
        # Pub/sub end-to-end is much faster than the TTL-bounded refresh path.
        assert baseline.update_latency < 0.1
        assert refresh.update_latency <= 15.0
        assert refresh.update_latency > baseline.update_latency


class TestSmallTopology:
    def test_update_record_bumps_serial_once(self):
        topology = SmallTopology()
        serial_before = topology.auth_zone.serial
        topology.update_record("203.0.113.1")
        assert topology.auth_zone.serial == serial_before + 1

    def test_custom_domain_and_ttl(self):
        topology = SmallTopology(SmallTopologyConfig(domain="api.service.io.", record_ttl=60))
        rrset = topology.auth_zone.get_rrset("api.service.io.", "A")
        assert rrset is not None and rrset.ttl == 60
