"""Tests for typed RDATA wire and presentation codecs."""

from __future__ import annotations

import pytest

from repro.dns.name import Name
from repro.dns.rdata import (
    AAAARdata,
    ARdata,
    CNAMERdata,
    GenericRdata,
    HTTPSRdata,
    MXRdata,
    NSRdata,
    RdataError,
    SOARdata,
    SRVRdata,
    SVCBRdata,
    TXTRdata,
    decode_rdata,
    parse_rdata,
    rdata_class_for,
)
from repro.dns.types import RecordType


def _roundtrip(rdata, rdtype):
    wire = rdata.to_wire()
    decoded = decode_rdata(rdtype, wire, 0, len(wire))
    return decoded


class TestAddressRdata:
    def test_a_roundtrip(self):
        rdata = ARdata("192.0.2.33")
        assert rdata.to_wire() == bytes([192, 0, 2, 33])
        assert _roundtrip(rdata, RecordType.A) == rdata
        assert rdata.to_text() == "192.0.2.33"

    def test_a_rejects_invalid_address(self):
        with pytest.raises(Exception):
            ARdata("not-an-ip")

    def test_a_wrong_length_rejected(self):
        with pytest.raises(RdataError):
            ARdata.from_wire(b"\x01\x02", 0, 2)

    def test_aaaa_roundtrip_and_canonical_text(self):
        rdata = AAAARdata("2001:DB8::1")
        assert _roundtrip(rdata, RecordType.AAAA).to_text() == "2001:db8::1"
        assert len(rdata.to_wire()) == 16


class TestNameBasedRdata:
    def test_cname_roundtrip(self):
        rdata = CNAMERdata(Name.from_text("target.example.com"))
        assert _roundtrip(rdata, RecordType.CNAME) == rdata

    def test_ns_from_text(self):
        rdata = parse_rdata(RecordType.NS, "ns1.example.net.")
        assert isinstance(rdata, NSRdata)
        assert rdata.target == Name.from_text("ns1.example.net")

    def test_mx_roundtrip(self):
        rdata = MXRdata(10, Name.from_text("mail.example.com"))
        decoded = _roundtrip(rdata, RecordType.MX)
        assert decoded.preference == 10
        assert decoded.exchange == Name.from_text("mail.example.com")

    def test_srv_roundtrip(self):
        rdata = SRVRdata(1, 5, 443, Name.from_text("svc.example.com"))
        assert _roundtrip(rdata, RecordType.SRV) == rdata
        assert parse_rdata(RecordType.SRV, rdata.to_text()) == rdata


class TestSoaRdata:
    def test_roundtrip_and_fields(self):
        soa = SOARdata(
            Name.from_text("ns1.example.com"),
            Name.from_text("hostmaster.example.com"),
            serial=2024010101,
            refresh=7200,
            retry=900,
            expire=1209600,
            minimum=120,
        )
        decoded = _roundtrip(soa, RecordType.SOA)
        assert decoded == soa
        assert decoded.serial == 2024010101

    def test_from_text_requires_seven_fields(self):
        with pytest.raises(RdataError):
            SOARdata.from_text("ns1.example.com. hostmaster.example.com. 1 2 3")

    def test_text_roundtrip(self):
        soa = SOARdata(Name.from_text("ns1.x."), Name.from_text("admin.x."), 7)
        assert parse_rdata(RecordType.SOA, soa.to_text()) == soa


class TestTxtRdata:
    def test_multiple_strings_roundtrip(self):
        rdata = TXTRdata((b"hello", b"world"))
        assert _roundtrip(rdata, RecordType.TXT) == rdata

    def test_oversized_string_rejected(self):
        with pytest.raises(RdataError):
            TXTRdata((b"x" * 256,))

    def test_from_text_with_quotes(self):
        rdata = TXTRdata.from_text('"v=spf1 -all"')
        assert rdata.strings == (b"v=spf1 -all",)


class TestSvcbHttpsRdata:
    def test_alpn_helper_roundtrip(self):
        rdata = HTTPSRdata.with_alpn(1, Name.root(), ["h2", "h3"])
        decoded = _roundtrip(rdata, RecordType.HTTPS)
        assert decoded.alpns() == ["h2", "h3"]
        assert decoded.priority == 1

    def test_text_roundtrip(self):
        rdata = SVCBRdata.with_alpn(16, Name.from_text("svc.example.com"), ["h3"])
        text = rdata.to_text()
        assert "alpn=h3" in text
        assert parse_rdata(RecordType.SVCB, text) == rdata

    def test_unknown_svcparam_in_text_rejected(self):
        with pytest.raises(RdataError):
            SVCBRdata.from_text("1 . frobnicate=1")

    def test_empty_alpn_list(self):
        rdata = HTTPSRdata(1, Name.root(), ())
        assert rdata.alpns() == []


class TestGenericAndRegistry:
    def test_generic_preserves_unknown_type_bytes(self):
        decoded = decode_rdata(RecordType.ANY, b"\x01\x02\x03", 0, 3)
        assert isinstance(decoded, GenericRdata)
        assert decoded.data == b"\x01\x02\x03"

    def test_generic_text_roundtrip(self):
        rdata = GenericRdata(0, b"\xde\xad\xbe\xef")
        assert GenericRdata.from_text(rdata.to_text()).data == b"\xde\xad\xbe\xef"

    def test_registry_lookup(self):
        assert rdata_class_for(RecordType.A) is ARdata
        assert rdata_class_for(RecordType.OPT) is None
