"""Tests for pluggable congestion control (`repro.quic.congestion`).

Unit coverage of the NewReno state machine (slow-start doubling, congestion
avoidance, loss backoff, the single-reduction-per-recovery-epoch rule and
the minimum-window floor), the Null controller's inertness, and integration
through :class:`repro.quic.connection.QuicConnection`: a small window must
visibly hold back sends and drain as ACKs open it, while the default Null
controller leaves the connection's behaviour untouched.
"""

from __future__ import annotations

import pytest

from repro.netsim.link import LinkConfig
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.quic.congestion import (
    DEFAULT_MSS,
    INITIAL_WINDOW_PACKETS,
    MINIMUM_WINDOW_PACKETS,
    NULL_CONGESTION,
    NewRenoCongestionController,
    NullCongestionController,
)
from repro.quic.connection import ConnectionConfig
from repro.quic.endpoint import QuicEndpoint
from repro.quic.tls import ServerTlsContext

MSS = DEFAULT_MSS


class TestNewRenoWindow:
    def test_initial_window_and_slow_start_doubling(self) -> None:
        cc = NewRenoCongestionController()
        assert cc.congestion_window == MSS * INITIAL_WINDOW_PACKETS
        assert cc.in_slow_start
        # Slow start: every acked byte grows the window by one byte, so a
        # full window of ACKs doubles it — per RTT, exponential.
        window = cc.congestion_window
        for packet_number in range(INITIAL_WINDOW_PACKETS):
            cc.on_packet_sent(packet_number, MSS)
        cc.on_packets_acked([(pn, MSS) for pn in range(INITIAL_WINDOW_PACKETS)])
        assert cc.congestion_window == 2 * window
        assert cc.bytes_in_flight == 0

    def test_slow_start_growth_is_monotone_in_acked_bytes(self) -> None:
        cc = NewRenoCongestionController()
        previous = cc.congestion_window
        for packet_number in range(50):
            cc.on_packet_sent(packet_number, MSS)
            cc.on_packets_acked([(packet_number, MSS)])
            assert cc.congestion_window > previous
            previous = cc.congestion_window

    def test_congestion_avoidance_grows_one_mss_per_window(self) -> None:
        cc = NewRenoCongestionController()
        # Force CA: take one loss so ssthresh becomes finite, then ack past
        # the recovery epoch.
        cc.on_packet_sent(0, MSS)
        cc.on_packets_lost([(0, MSS)])
        assert not cc.in_slow_start
        window = cc.congestion_window
        # One full window of post-epoch ACKs grows cwnd by ~one MSS (linear).
        packet_number = 1
        acked = 0
        while acked < window:
            cc.on_packet_sent(packet_number, MSS)
            cc.on_packets_acked([(packet_number, MSS)])
            acked += MSS
            packet_number += 1
        assert window < cc.congestion_window <= window + 2 * MSS

    def test_loss_halves_window_once_per_recovery_epoch(self) -> None:
        cc = NewRenoCongestionController()
        for packet_number in range(10):
            cc.on_packet_sent(packet_number, MSS)
        window = cc.congestion_window
        cc.on_packets_lost([(3, MSS)])
        assert cc.congestion_events == 1
        assert cc.congestion_window == int(window * 0.5)
        # Further losses of packets sent *before* the epoch opened are not
        # fresh congestion signals.
        reduced = cc.congestion_window
        cc.on_packets_lost([(5, MSS), (7, MSS)])
        assert cc.congestion_events == 1
        assert cc.congestion_window == reduced
        # A loss of a packet sent after the epoch opened starts a new one.
        cc.on_packet_sent(10, MSS)
        cc.on_packets_lost([(10, MSS)])
        assert cc.congestion_events == 2
        assert cc.congestion_window == int(reduced * 0.5)

    def test_window_never_collapses_below_minimum(self) -> None:
        cc = NewRenoCongestionController()
        floor = MSS * MINIMUM_WINDOW_PACKETS
        for packet_number in range(40):
            cc.on_packet_sent(packet_number, MSS)
            cc.on_packets_lost([(packet_number, MSS)])
        assert cc.congestion_window == floor
        assert cc.ssthresh == floor

    def test_can_send_respects_bytes_in_flight(self) -> None:
        cc = NewRenoCongestionController()
        window = cc.congestion_window
        assert cc.can_send(window)
        cc.on_packet_sent(0, window - 100)
        assert cc.can_send(100)
        assert not cc.can_send(101)
        cc.on_packets_acked([(0, window - 100)])
        assert cc.can_send(window)

    def test_discard_releases_flight_without_congestion_signal(self) -> None:
        cc = NewRenoCongestionController()
        cc.on_packet_sent(0, 500)
        window = cc.congestion_window
        cc.on_packets_discarded([(0, 500)])
        assert cc.bytes_in_flight == 0
        assert cc.congestion_window == window
        assert cc.congestion_events == 0

    def test_acks_inside_recovery_epoch_do_not_grow_the_window(self) -> None:
        cc = NewRenoCongestionController()
        for packet_number in range(8):
            cc.on_packet_sent(packet_number, MSS)
        cc.on_packets_lost([(0, MSS)])
        reduced = cc.congestion_window
        cc.on_packets_acked([(pn, MSS) for pn in range(1, 8)])
        assert cc.congestion_window == reduced

    def test_constructor_validation(self) -> None:
        with pytest.raises(ValueError, match="mss"):
            NewRenoCongestionController(mss=0)
        with pytest.raises(ValueError, match="minimum window"):
            NewRenoCongestionController(
                initial_window_packets=1, minimum_window_packets=2
            )


class TestNullController:
    def test_null_controller_is_inert_and_shared(self) -> None:
        assert NullCongestionController.active is False
        assert NULL_CONGESTION.can_send(10**9)
        NULL_CONGESTION.on_packet_sent(0, 1200)
        NULL_CONGESTION.on_packets_lost([(0, 1200)])
        assert NULL_CONGESTION.congestion_window == 0
        assert NULL_CONGESTION.bytes_in_flight == 0
        assert NULL_CONGESTION.congestion_events == 0


SERVER = "server"
CLIENT = "client"
RTT = 0.1


def _connected_pair(congestion_controller=None):
    simulator = Simulator(seed=5)
    network = Network(simulator)
    network.add_host(SERVER)
    network.add_host(CLIENT)
    network.connect(SERVER, CLIENT, LinkConfig(delay=RTT / 2))
    QuicEndpoint(
        network.host(SERVER),
        port=4443,
        server_tls=ServerTlsContext(alpn_protocols=("moq-00",)),
        on_connection=lambda connection: None,
    )
    client_endpoint = QuicEndpoint(network.host(CLIENT))
    config = ConnectionConfig(
        alpn_protocols=("moq-00",), congestion_controller=congestion_controller
    )
    connection = client_endpoint.connect(Address(SERVER, 4443), config)
    simulator.run(until=1.0)
    assert connection.handshake_complete
    return simulator, connection


class TestConnectionIntegration:
    def test_default_connection_installs_the_null_singleton(self) -> None:
        _, connection = _connected_pair()
        assert connection.congestion is NULL_CONGESTION
        assert connection.cwnd_blocked_packets == 0

    def test_small_window_blocks_then_acks_drain_the_backlog(self) -> None:
        simulator, connection = _connected_pair(
            lambda: NewRenoCongestionController(
                initial_window_packets=2, minimum_window_packets=2
            )
        )
        stream = connection.open_stream()
        # Far more than two packets' worth of data: the window must hold
        # some packets back immediately after the burst.
        for chunk in range(12):
            connection.send_stream_data(stream, bytes(600), fin=False)
        assert connection.cwnd_blocked_packets > 0
        assert connection.congestion.bytes_in_flight > 0
        # ACKs open the window; the backlog must drain completely.
        simulator.run(until=simulator.now + 20 * RTT)
        assert connection.cwnd_blocked_packets == 0
        assert connection.congestion.bytes_in_flight == 0
        assert connection.congestion.congestion_events == 0

    def test_newreno_connection_reaches_the_same_payload(self) -> None:
        """Same delivered stream bytes with and without a tight window —
        congestion control delays, never drops."""

        def run(controller):
            simulator = Simulator(seed=5)
            network = Network(simulator)
            network.add_host(SERVER)
            network.add_host(CLIENT)
            network.connect(SERVER, CLIENT, LinkConfig(delay=RTT / 2))
            received: list[bytes] = []

            def handler(connection):
                connection.on_stream_data = (
                    lambda stream_id, data, fin: received.append(bytes(data))
                )

            QuicEndpoint(
                network.host(SERVER),
                port=4443,
                server_tls=ServerTlsContext(alpn_protocols=("moq-00",)),
                on_connection=handler,
            )
            client_endpoint = QuicEndpoint(network.host(CLIENT))
            connection = client_endpoint.connect(
                Address(SERVER, 4443),
                ConnectionConfig(
                    alpn_protocols=("moq-00",), congestion_controller=controller
                ),
            )
            simulator.run(until=1.0)
            stream = connection.open_stream()
            for chunk in range(20):
                connection.send_stream_data(stream, bytes([chunk]) * 400, fin=False)
            simulator.run(until=simulator.now + 30 * RTT)
            return b"".join(received)

        tight = run(
            lambda: NewRenoCongestionController(
                initial_window_packets=2, minimum_window_packets=2
            )
        )
        unlimited = run(None)
        assert tight == unlimited
        assert len(tight) == 20 * 400
