"""Tests for zones: content management, serial bumping and the lookup algorithm."""

from __future__ import annotations

import pytest

from repro.dns.name import Name
from repro.dns.rdata import ARdata
from repro.dns.rr import ResourceRecord, RRset
from repro.dns.types import Rcode, RecordType
from repro.dns.zone import Zone, ZoneChange, ZoneError
from repro.dns.zonefile import ZoneFileError, parse_zone_text, serialize_zone


@pytest.fixture
def zone() -> Zone:
    zone = Zone("example.com.", default_ttl=300)
    zone.add("www.example.com.", "A", "192.0.2.1", bump=False)
    zone.add("www.example.com.", "A", "192.0.2.2", bump=False)
    zone.add("example.com.", "NS", "ns1.example.com.", bump=False)
    zone.add("ns1.example.com.", "A", "192.0.2.53", bump=False)
    zone.add("alias.example.com.", "CNAME", "www.example.com.", bump=False)
    zone.add("*.wild.example.com.", "TXT", '"wildcard"', bump=False)
    zone.add("sub.example.com.", "NS", "ns1.sub.example.com.", bump=False)
    zone.add("ns1.sub.example.com.", "A", "192.0.2.99", bump=False)
    return zone


class TestZoneContent:
    def test_serial_starts_at_one_and_bumps_on_change(self, zone):
        start = zone.serial
        zone.add("new.example.com.", "A", "192.0.2.10")
        assert zone.serial == start + 1
        zone.delete_rrset(Name.from_text("new.example.com."), RecordType.A)
        assert zone.serial == start + 2

    def test_serial_monotonically_increases(self, zone):
        serials = [zone.serial]
        for index in range(5):
            zone.add(f"h{index}.example.com.", "A", "192.0.2.20")
            serials.append(zone.serial)
        assert serials == sorted(serials)
        assert len(set(serials)) == len(serials)

    def test_out_of_zone_record_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add("www.other.org.", "A", "192.0.2.1")

    def test_change_listener_notified(self, zone):
        changes: list[ZoneChange] = []
        zone.subscribe_changes(changes.append)
        zone.add("www2.example.com.", "A", "192.0.2.7")
        assert len(changes) == 1
        assert changes[0].name == Name.from_text("www2.example.com.")
        assert changes[0].serial == zone.serial

    def test_replace_rrset_overwrites(self, zone):
        name = Name.from_text("www.example.com.")
        replacement = RRset(
            name, RecordType.A, [ResourceRecord(name, RecordType.A, ARdata("198.51.100.1"), 60)]
        )
        zone.replace_rrset(replacement)
        stored = zone.get_rrset(name, RecordType.A)
        assert stored is not None
        assert [record.rdata.to_text() for record in stored] == ["198.51.100.1"]

    def test_delete_missing_rrset_returns_false(self, zone):
        assert zone.delete_rrset(Name.from_text("missing.example.com."), RecordType.A) is False

    def test_names_and_len(self, zone):
        assert Name.from_text("www.example.com.") in zone.names()
        assert len(zone) > 5


class TestZoneLookup:
    def test_exact_match(self, zone):
        result = zone.lookup(Name.from_text("www.example.com."), RecordType.A)
        assert result.rcode == Rcode.NOERROR
        assert len(result.answers) == 2
        assert not result.is_referral

    def test_nxdomain_includes_soa(self, zone):
        result = zone.lookup(Name.from_text("missing.example.com."), RecordType.A)
        assert result.rcode == Rcode.NXDOMAIN
        assert result.authorities[0].rdtype == RecordType.SOA

    def test_nodata_for_existing_name_wrong_type(self, zone):
        result = zone.lookup(Name.from_text("www.example.com."), RecordType.AAAA)
        assert result.rcode == Rcode.NOERROR
        assert result.answers == ()
        assert result.authorities[0].rdtype == RecordType.SOA

    def test_cname_chased_within_zone(self, zone):
        result = zone.lookup(Name.from_text("alias.example.com."), RecordType.A)
        assert result.rcode == Rcode.NOERROR
        types = [record.rdtype for record in result.answers]
        assert RecordType.CNAME in types and RecordType.A in types

    def test_cname_query_returns_cname_only(self, zone):
        result = zone.lookup(Name.from_text("alias.example.com."), RecordType.CNAME)
        assert [record.rdtype for record in result.answers] == [RecordType.CNAME]

    def test_wildcard_synthesis(self, zone):
        result = zone.lookup(Name.from_text("anything.wild.example.com."), RecordType.TXT)
        assert result.rcode == Rcode.NOERROR
        assert result.answers[0].name == Name.from_text("anything.wild.example.com.")

    def test_delegation_returns_referral_with_glue(self, zone):
        result = zone.lookup(Name.from_text("host.sub.example.com."), RecordType.A)
        assert result.is_referral
        assert result.rcode == Rcode.NOERROR
        assert result.authorities[0].rdtype == RecordType.NS
        glue_names = [record.name for record in result.additionals]
        assert Name.from_text("ns1.sub.example.com.") in glue_names

    def test_out_of_zone_query_refused(self, zone):
        result = zone.lookup(Name.from_text("www.other.org."), RecordType.A)
        assert result.rcode == Rcode.REFUSED

    def test_apex_ns_not_treated_as_delegation(self, zone):
        result = zone.lookup(Name.from_text("example.com."), RecordType.NS)
        assert not result.is_referral
        assert result.answers[0].rdtype == RecordType.NS


class TestZoneFile:
    def test_parse_and_serialize_roundtrip(self):
        text = """
$ORIGIN example.org.
$TTL 600
@ SOA ns1.example.org. hostmaster.example.org. 17 3600 600 86400 300
@ NS ns1.example.org.
ns1 A 192.0.2.53
www 300 IN A 192.0.2.80
www A 192.0.2.81
api CNAME www.example.org.
txt TXT "hello world"
"""
        zone = parse_zone_text(text)
        assert zone.origin == Name.from_text("example.org.")
        assert zone.serial == 17
        www = zone.get_rrset("www.example.org.", "A")
        assert www is not None and len(www) == 2
        assert www.records[0].ttl == 300
        ns1 = zone.get_rrset("ns1.example.org.", "A")
        assert ns1 is not None and ns1.records[0].ttl == 600
        rendered = serialize_zone(zone)
        reparsed = parse_zone_text(rendered)
        assert reparsed.serial == 17
        assert reparsed.get_rrset("api.example.org.", "CNAME") is not None

    def test_origin_argument_used_when_no_directive(self):
        zone = parse_zone_text("www A 192.0.2.1\n", origin="example.net.")
        assert zone.get_rrset("www.example.net.", "A") is not None

    def test_missing_origin_rejected(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text("www A 192.0.2.1\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text("$ORIGIN x.\nwww BOGUS 1\n")

    def test_comments_and_blank_lines_ignored(self):
        zone = parse_zone_text(
            "$ORIGIN example.io.\n; a comment\n\nwww A 192.0.2.5 ; trailing comment\n"
        )
        assert zone.get_rrset("www.example.io.", "A") is not None
