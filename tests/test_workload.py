"""Tests for the synthetic workload models (toplist, TTLs, changes, zones, queries)."""

from __future__ import annotations

import random

import pytest

from repro.dns.name import Name
from repro.dns.types import RecordType
from repro.workload.change_model import ChangeModel, ChangeModelConfig, DYNAMIC_TTL_THRESHOLD
from repro.workload.queries import QueryModel, QueryModelConfig
from repro.workload.toplist import PAPER_COVERAGE, SyntheticToplist, ToplistConfig
from repro.workload.ttl_model import TTL_CLUSTERS, TtlModel
from repro.workload.zones import WorkloadZones, ZoneBuildConfig


@pytest.fixture(scope="module")
def toplist() -> SyntheticToplist:
    return SyntheticToplist(ToplistConfig(size=2000, seed=7))


class TestTtlModel:
    def test_samples_come_from_observed_clusters(self):
        model = TtlModel()
        rng = random.Random(1)
        for rdtype in (RecordType.A, RecordType.AAAA, RecordType.HTTPS):
            for _ in range(200):
                assert model.sample(rdtype, rng) in TTL_CLUSTERS

    def test_https_ttls_cluster_at_300(self):
        model = TtlModel()
        rng = random.Random(2)
        samples = [model.sample(RecordType.HTTPS, rng) for _ in range(500)]
        assert samples.count(300) / len(samples) > 0.9

    def test_probability_normalised(self):
        model = TtlModel()
        total = sum(model.probability(RecordType.A, ttl) for ttl in TTL_CLUSTERS)
        assert total == pytest.approx(1.0)

    def test_invalid_cluster_rejected(self):
        with pytest.raises(ValueError):
            TtlModel(weights={RecordType.A: {42: 1.0}})

    def test_expected_counts_scale_with_population(self):
        model = TtlModel()
        counts = model.expected_counts(RecordType.A, 1000)
        assert sum(counts.values()) == pytest.approx(1000)


class TestToplist:
    def test_population_size_and_ranks(self, toplist):
        assert len(toplist) == 2000
        assert toplist.domain(1).rank == 1
        assert toplist.domain(2000).rank == 2000

    def test_coverage_close_to_paper_fractions(self, toplist):
        counts = toplist.count_by_type()
        for rdtype, fraction in PAPER_COVERAGE.items():
            observed = counts[rdtype] / len(toplist)
            assert abs(observed - fraction) < 0.04, rdtype

    def test_deterministic_given_seed(self):
        first = SyntheticToplist(ToplistConfig(size=100, seed=3))
        second = SyntheticToplist(ToplistConfig(size=100, seed=3))
        assert [d.name for d in first] == [d.name for d in second]
        assert [d.ttls for d in first] == [d.ttls for d in second]

    def test_ttl_histogram_covers_only_clusters(self, toplist):
        histogram = toplist.ttl_histogram(RecordType.A)
        assert set(histogram) <= set(TTL_CLUSTERS)
        assert sum(histogram.values()) == len(toplist.domains_with_type(RecordType.A))

    def test_domains_have_unique_names(self, toplist):
        names = [domain.name for domain in toplist]
        assert len(set(names)) == len(names)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ToplistConfig(size=0)
        with pytest.raises(ValueError):
            ToplistConfig(coverage={RecordType.A: 1.5})


class TestChangeModel:
    def test_low_ttl_domains_change_frequently_high_ttl_rarely(self):
        model = ChangeModel(ChangeModelConfig(seed=5))
        low_changes = []
        high_changes = []
        for index in range(300):
            low = model.process_for(index, ttl=60)
            high = model.process_for(index + 1000, ttl=3600)
            for _ in range(100):
                low.advance()
                high.advance()
            low_changes.append(low.changes)
            high_changes.append(high.changes)
        low_changes.sort()
        high_changes.sort()
        assert low_changes[int(0.9 * len(low_changes))] >= 20
        assert high_changes[int(0.9 * len(high_changes))] == 0

    def test_lexicographic_stability_of_current_sorted(self):
        model = ChangeModel()
        process = model.process_for(1, ttl=300)
        first = process.current_sorted()
        assert first == tuple(sorted(process.current_addresses()))

    def test_change_produces_different_address_set(self):
        model = ChangeModel(ChangeModelConfig(seed=1, dynamic_fraction_low_ttl=1.0,
                                              dynamic_change_range=(1.0, 1.0)))
        process = model.process_for(3, ttl=60)
        before = process.current_sorted()
        assert process.advance() is True
        assert process.current_sorted() != before

    def test_processes_are_deterministic_per_domain(self):
        model = ChangeModel(ChangeModelConfig(seed=9))
        first = model.process_for(11, ttl=300)
        second = model.process_for(11, ttl=300)
        for _ in range(20):
            first.advance()
            second.advance()
        assert first.current_sorted() == second.current_sorted()
        assert first.changes == second.changes

    def test_mean_change_interval(self):
        model = ChangeModel()
        process = model.process_for(2, ttl=300)
        if process.change_probability > 0:
            assert process.mean_change_interval() == pytest.approx(
                300 / process.change_probability
            )
        static = ChangeModelConfig(dynamic_fraction_low_ttl=0.0)
        static_process = ChangeModel(static).process_for(2, ttl=300)
        assert static_process.mean_change_interval() == float("inf")

    def test_dynamic_fraction_threshold(self):
        model = ChangeModel()
        assert model.dynamic_fraction(DYNAMIC_TTL_THRESHOLD) > model.dynamic_fraction(600)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ChangeModelConfig(dynamic_change_range=(0.9, 0.1))


class TestWorkloadZones:
    @pytest.fixture(scope="class")
    def zones(self) -> WorkloadZones:
        toplist = SyntheticToplist(ToplistConfig(size=50, seed=3))
        return WorkloadZones(toplist, config=ZoneBuildConfig(auth_server_count=3))

    def test_root_zone_delegates_every_tld(self, zones):
        for tld in zones.toplist.tld_names():
            assert zones.root_zone.get_rrset(Name.from_text(f"{tld}."), RecordType.NS) is not None

    def test_tld_zones_delegate_every_domain_with_glue(self, zones):
        for domain in zones.toplist.domains():
            tld = domain.name.labels[-1].decode("ascii")
            tld_zone = zones.tld_zones[tld]
            assert tld_zone.get_rrset(domain.name, RecordType.NS) is not None
            assignment = zones.assignment(domain.name)
            ns_name = Name((b"ns1",) + domain.name.labels)
            glue = tld_zone.get_rrset(ns_name, RecordType.A)
            assert glue is not None
            assert glue.records[0].rdata.to_text() == assignment.auth_host

    def test_authoritative_zones_carry_declared_record_types(self, zones):
        for domain in zones.toplist.domains():
            zone = zones.assignment(domain.name).zone
            for rdtype in domain.record_types:
                assert zone.get_rrset(domain.name, rdtype) is not None, (domain.name, rdtype)

    def test_advance_domain_applies_changes_and_bumps_serial(self, zones):
        changed_any = False
        for domain in zones.toplist.domains_with_type(RecordType.A):
            assignment = zones.assignment(domain.name)
            serial_before = assignment.zone.serial
            rrset_before = assignment.zone.get_rrset(domain.name, RecordType.A)
            texts_before = rrset_before.sorted_rdata_texts()
            for _ in range(20):
                if zones.advance_domain(domain.name):
                    changed_any = True
                    rrset_after = assignment.zone.get_rrset(domain.name, RecordType.A)
                    assert rrset_after.sorted_rdata_texts() != texts_before
                    assert assignment.zone.serial > serial_before
                    break
            if changed_any:
                break
        assert changed_any, "at least one domain must change within 20 observations"

    def test_all_hosts_cover_root_tlds_and_auths(self, zones):
        hosts = zones.all_hosts()
        assert "198.41.0.4" in hosts
        assert len(hosts) >= 1 + len(zones.tld_zones)


class TestQueryModel:
    def test_zipf_popularity_prefers_top_ranks(self):
        toplist = SyntheticToplist(ToplistConfig(size=500, seed=5))
        model = QueryModel(toplist, QueryModelConfig(seed=1))
        samples = [model.sample_domain().rank for _ in range(3000)]
        top_100 = sum(1 for rank in samples if rank <= 100)
        assert top_100 / len(samples) > 0.5

    def test_generated_stream_is_sorted_and_bounded(self):
        toplist = SyntheticToplist(ToplistConfig(size=100, seed=5))
        model = QueryModel(toplist, QueryModelConfig(queries_per_second=5.0, seed=2))
        events = model.generate(duration=60.0, client_seed=1)
        times = [event.time for event in events]
        assert times == sorted(times)
        assert all(0 <= time < 60.0 for time in times)
        assert 100 < len(events) < 600
        assert model.unique_domains(events) <= 100

    def test_sample_type_respects_domain_capabilities(self):
        toplist = SyntheticToplist(ToplistConfig(size=200, seed=5))
        model = QueryModel(toplist)
        for domain in toplist.domains()[:50]:
            if not domain.record_types:
                continue
            rdtype = model.sample_type(domain)
            assert rdtype in domain.record_types

    def test_zero_rate_yields_empty_stream(self):
        toplist = SyntheticToplist(ToplistConfig(size=10, seed=5))
        model = QueryModel(toplist, QueryModelConfig(queries_per_second=0.0))
        assert model.generate(10.0) == []

    def test_streams_deterministic_per_client_seed(self):
        toplist = SyntheticToplist(ToplistConfig(size=100, seed=5))
        model = QueryModel(toplist, QueryModelConfig(seed=3))
        first = model.generate(30.0, client_seed=9)
        second = model.generate(30.0, client_seed=9)
        assert [(e.time, e.domain.rank, e.rdtype) for e in first] == [
            (e.time, e.domain.rank, e.rdtype) for e in second
        ]
