"""Tests for DNS name handling and wire format."""

from __future__ import annotations

import pytest

from repro.dns.name import MAX_NAME_LENGTH, Name, NameError_


class TestNameParsing:
    def test_from_text_and_back(self):
        assert Name.from_text("www.Example.COM").to_text() == "www.example.com."

    def test_trailing_dot_optional(self):
        assert Name.from_text("example.com.") == Name.from_text("example.com")

    def test_root_name(self):
        root = Name.from_text(".")
        assert root.is_root
        assert root.to_text() == "."
        assert len(root) == 0

    def test_case_insensitive_equality_and_hash(self):
        lower = Name.from_text("mail.example.com")
        upper = Name.from_text("MAIL.EXAMPLE.COM")
        assert lower == upper
        assert hash(lower) == hash(upper)

    def test_label_too_long_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("a" * 64 + ".com")

    def test_name_too_long_rejected(self):
        labels = [b"a" * 63] * 4 + [b"b" * 8]
        with pytest.raises(NameError_):
            Name(labels)

    def test_empty_label_rejected(self):
        with pytest.raises(NameError_):
            Name([b"www", b"", b"com"])


class TestNameRelations:
    def test_parent_and_child(self):
        name = Name.from_text("www.example.com")
        assert name.parent() == Name.from_text("example.com")
        assert Name.from_text("example.com").child("api") == Name.from_text("api.example.com")

    def test_root_has_no_parent(self):
        with pytest.raises(NameError_):
            Name.root().parent()

    def test_subdomain_relation(self):
        child = Name.from_text("a.b.example.com")
        assert child.is_subdomain_of(Name.from_text("example.com"))
        assert child.is_subdomain_of(Name.root())
        assert child.is_subdomain_of(child)
        assert not Name.from_text("example.org").is_subdomain_of(Name.from_text("example.com"))
        assert not Name.from_text("notexample.com").is_subdomain_of(Name.from_text("example.com"))

    def test_ancestors_include_root(self):
        ancestors = Name.from_text("www.example.com").ancestors()
        assert ancestors[0] == Name.from_text("www.example.com")
        assert ancestors[-1] == Name.root()
        assert len(ancestors) == 4

    def test_relativize(self):
        name = Name.from_text("www.example.com")
        assert name.relativize(Name.from_text("example.com")) == (b"www",)
        with pytest.raises(NameError_):
            name.relativize(Name.from_text("example.org"))

    def test_canonical_ordering_is_root_first(self):
        first = Name.from_text("a.example.com")
        second = Name.from_text("b.example.com")
        other_zone = Name.from_text("a.example.org")
        assert first < second
        assert second < other_zone  # com sorts before org at the top level


class TestNameWireFormat:
    def test_uncompressed_roundtrip(self):
        name = Name.from_text("mail.example.com")
        wire = name.to_wire()
        decoded, consumed = Name.from_wire(wire, 0)
        assert decoded == name
        assert consumed == len(wire)

    def test_root_encodes_to_single_zero_byte(self):
        assert Name.root().to_wire() == b"\x00"

    def test_compression_reuses_suffix(self):
        compress: dict[Name, int] = {}
        first = Name.from_text("www.example.com").to_wire(compress, offset=0)
        second = Name.from_text("mail.example.com").to_wire(compress, offset=len(first))
        # The second name should be shorter than its uncompressed form because
        # "example.com" is emitted as a 2-byte pointer.
        assert len(second) < len(Name.from_text("mail.example.com").to_wire())
        buffer = first + second
        decoded_first, _ = Name.from_wire(buffer, 0)
        decoded_second, _ = Name.from_wire(buffer, len(first))
        assert decoded_first == Name.from_text("www.example.com")
        assert decoded_second == Name.from_text("mail.example.com")

    def test_pointer_loop_protection(self):
        # A pointer pointing at itself must not loop forever.
        wire = b"\xc0\x00"
        with pytest.raises(NameError_):
            Name.from_wire(wire, 0)

    def test_truncated_name_rejected(self):
        with pytest.raises(NameError_):
            Name.from_wire(b"\x03ww", 0)

    def test_truncated_pointer_rejected(self):
        with pytest.raises(NameError_):
            Name.from_wire(b"\xc0", 0)

    def test_reserved_label_type_rejected(self):
        with pytest.raises(NameError_):
            Name.from_wire(b"\x80abc", 0)
