"""Tests for E14 (replicated origin failover) and the promotion model.

Covers the failsafe origin end to end:

* the :class:`~repro.relaynet.origincluster.OriginCluster` — warm standby
  caches, the silent ``crash_active`` fault injector, deterministic
  epoch-numbered promotion, replay-ring top-up and standby re-attachment;
* :meth:`~repro.relaynet.topology.RelayTopology.report_origin_failure` —
  first-detector-wins election, idempotent and stale-epoch-safe reporting,
  tier-0 subscription transplant (including *pending* SUBSCRIBEs issued
  during the outage);
* terminal double failures — ``origins=2`` losing both origins must record
  a clean ``no-surviving-origin`` event (never hang), ``origins=3`` must
  survive two sequential origin deaths gapless at epoch 2;
* the closed-form :mod:`repro.analysis.promotion` model and the E14
  experiment's agreement with it;
* determinism canaries — configuring (but never crashing) a replicated
  origin must leave the E11/E12/E13 seeded outputs identical, and E14
  itself must be seeded-repeatable;
* telemetry — the origin-cluster collector and the promotion span segment.
"""

from __future__ import annotations

import pytest

from repro.analysis.churn import recovery_model
from repro.analysis.detection import DetectionModel
from repro.analysis.promotion import ELECTION_LATENCY, PromotionModel, promotion_model
from repro.experiments.failure_detection import run_failure_detection
from repro.experiments.origin_failover import run_origin_failover
from repro.experiments.relay_churn import run_relay_churn
from repro.experiments.relay_fanout import (
    ORIGIN_HOST as ORIGIN,
    ORIGIN_PORT,
    TRACK,
    run_relay_fanout,
)
from repro.moqt.objectmodel import MoqtObject
from repro.moqt.relay import MOQT_ALPN
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.quic.connection import ConnectionConfig
from repro.relaynet import (
    NoSurvivingParentError,
    OriginCluster,
    RelayTreeSpec,
)
from repro.relaynet.topology import RelayTopology
from repro.telemetry import MetricsRegistry, SpanTracer, Telemetry


def build_cluster(origins: int = 2, seed: int = 7):
    """A bare origin cluster on a fresh network, warm after 1 s."""
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    cluster = OriginCluster(network, origins=origins)
    simulator.run(until=simulator.now + 1.0)
    return simulator, network, cluster


def push_groups(simulator, cluster: OriginCluster, groups, interval: float = 0.25):
    for group in groups:
        cluster.push(
            MoqtObject(group_id=group, object_id=0, payload=f"v{group}".encode())
        )
        simulator.run(until=simulator.now + interval)


def build_cluster_tree(origins: int = 2, seed: int = 7, mid_relays: int = 2,
                       edge_per_mid: int = 2, keepalive_interval: float = 0.5):
    """A CDN tree hanging off a replicated origin, keepalive'd uplinks."""
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    spec = RelayTreeSpec.cdn(
        mid_relays=mid_relays, edge_per_mid=edge_per_mid, origins=origins
    )
    cluster = OriginCluster(
        network, origins=spec.origins, standby_link=spec.tiers[0].uplink
    )
    topology = RelayTopology(
        network,
        Address(ORIGIN, ORIGIN_PORT),
        spec,
        uplink_connection=ConnectionConfig(
            alpn_protocols=(MOQT_ALPN,), keepalive_interval=keepalive_interval
        ),
        origin_cluster=cluster,
    )
    return simulator, network, cluster, topology


class TestPromotionModel:
    def _detection(self) -> DetectionModel:
        return DetectionModel(
            crashed_at=10.0, probe_timeout=0.1, next_send_at=10.2, idle_deadline=40.0
        )

    def test_promotion_is_detection_plus_election_plus_reattach(self):
        detection = self._detection()
        model = promotion_model(detection, link_delay=0.020)
        floor = recovery_model(0.020).reattach_latency
        assert model.detection_latency == detection.detection_latency
        assert model.path == "pto-suspect"
        assert model.election_latency == ELECTION_LATENCY == 0.0
        assert model.reattach_latency == pytest.approx(floor)
        assert model.promotion_latency == pytest.approx(
            detection.detection_latency + floor
        )
        assert model.promoted_at == pytest.approx(detection.detected_at)

    def test_explicit_election_latency_lands_between_detect_and_reattach(self):
        model = promotion_model(self._detection(), 0.020, election_latency=0.1)
        base = promotion_model(self._detection(), 0.020)
        assert model.promotion_latency == pytest.approx(base.promotion_latency + 0.1)
        assert model.promoted_at == pytest.approx(base.promoted_at + 0.1)

    def test_alpn_negotiation_shaves_a_round_trip(self):
        slow = promotion_model(self._detection(), 0.020)
        fast = promotion_model(self._detection(), 0.020, alpn_version_negotiation=True)
        assert fast.promotion_latency < slow.promotion_latency

    def test_negative_election_latency_is_rejected(self):
        with pytest.raises(ValueError):
            PromotionModel(
                detection=self._detection(),
                reattach=recovery_model(0.020),
                election_latency=-0.1,
            )


class TestOriginCluster:
    def test_standby_caches_warm_through_live_subscription(self):
        simulator, _, cluster = build_cluster(origins=3)
        push_groups(simulator, cluster, [2, 3, 4, 5])
        marks = [origin.high_water for origin in cluster.origins]
        assert marks[0] is not None and marks[0].group_id == 5
        assert marks[1] == marks[0] and marks[2] == marks[0], (
            "every standby's cache must track the active in real time"
        )

    def test_cluster_validates_size_and_spec_does_too(self):
        simulator = Simulator(seed=3)
        network = Network(simulator)
        with pytest.raises(ValueError):
            OriginCluster(network, origins=0)
        with pytest.raises(ValueError):
            RelayTreeSpec.cdn(origins=0)

    def test_crash_active_is_silent_and_single_shot(self):
        simulator, _, cluster = build_cluster(origins=2)
        push_groups(simulator, cluster, [2, 3])
        crashed = cluster.crash_active()
        assert crashed.crashed_at == simulator.now
        assert cluster.epoch == 0 and cluster.active is crashed, (
            "a silent crash must not promote by itself — only a detection "
            "report may"
        )
        # Nothing the dead origin hosted speaks again.
        simulator.run(until=simulator.now + 2.0)
        assert all(session.closed for session in crashed.publisher.sessions)
        with pytest.raises(ValueError):
            cluster.crash_active()

    def test_promote_elects_lowest_index_and_reattaches_survivors(self):
        simulator, _, cluster = build_cluster(origins=3)
        push_groups(simulator, cluster, [2, 3])
        cluster.crash_active()
        promotion = cluster.promote(via="test")
        assert promotion is not None and promotion.epoch == cluster.epoch == 1
        assert cluster.active is cluster.origins[1], "lowest surviving index wins"
        assert cluster.origins[0].role == "deposed"
        # The remaining standby re-subscribes to the new active: a push now
        # reaches both survivors.
        simulator.run(until=simulator.now + 1.0)
        push_groups(simulator, cluster, [4])
        assert cluster.origins[1].high_water.group_id == 4
        assert cluster.origins[2].high_water.group_id == 4

    def test_promote_with_no_survivors_returns_none(self):
        simulator, _, cluster = build_cluster(origins=2)
        cluster.crash_active()
        first = cluster.promote(via="test")
        assert first is not None and first.epoch == 1
        cluster.crash_active()
        assert cluster.promote(via="test") is None
        assert cluster.epoch == 1, "a failed election must not burn an epoch"

    def test_replay_ring_is_bounded(self):
        simulator, network, _ = build_cluster(origins=1)
        cluster = OriginCluster(network, origins=1, host="o2", port=4553,
                                replay_window=4)
        simulator.run(until=simulator.now + 1.0)
        push_groups(simulator, cluster, range(2, 12), interval=0.01)
        assert len(cluster._replay) == 4
        assert [obj.group_id for obj in cluster._replay] == [8, 9, 10, 11]


class TestOriginFailureReporting:
    def subscribe_population(self, simulator, topology, count=8):
        topology.attach_subscribers(count)
        received = {sub.index: [] for sub in topology.subscribers}
        topology.subscribe_all(
            TRACK, on_object=lambda sub, obj: received[sub.index].append(obj.group_id)
        )
        simulator.run(until=simulator.now + 1.0)
        return received

    def test_report_promotes_and_transplants_every_tier0_uplink(self):
        simulator, _, cluster, topology = build_cluster_tree(origins=2)
        self.subscribe_population(simulator, topology)
        push_groups(simulator, cluster, [2, 3])
        victim = cluster.crash_active()
        simulator.run(until=simulator.now + 0.05)
        reporter = topology.tiers[0][0]
        event = topology.report_origin_failure(reporter, via="pto-suspect")
        assert event is not None and event.cause == "detected"
        assert event.tier == "origin" and event.epoch == 1
        assert victim.failure_event is event
        assert topology.origin == cluster.address == cluster.active.address
        simulator.run(until=simulator.now + 1.0)
        for node in topology.tiers[0]:
            assert node.relay.upstream_address == cluster.active.address
        assert event.complete, "every tier-0 relay re-subscribed"

    def test_reports_are_idempotent_and_stale_epoch_safe(self):
        from types import SimpleNamespace

        simulator, _, cluster, topology = build_cluster_tree(origins=2)
        self.subscribe_population(simulator, topology)
        push_groups(simulator, cluster, [2])
        old_address = cluster.active.address
        cluster.crash_active()
        simulator.run(until=simulator.now + 0.05)
        first = topology.report_origin_failure(topology.tiers[0][0], via="pto-suspect")
        # A straggling detector whose signal raced the transplant still
        # names the *deposed* origin through its (old) uplink address: the
        # stale report hands back the recorded event, burns no epoch.
        straggler = SimpleNamespace(relay=SimpleNamespace(upstream_address=old_address))
        second = topology.report_origin_failure(straggler, via="pto-suspect")
        assert second is first
        assert cluster.epoch == 1 and len(cluster.promotions) == 1
        # A reporter pointing at an address that is no origin at all is a
        # no-op (e.g. a report that raced a relay-tier re-parent).
        nobody = SimpleNamespace(
            relay=SimpleNamespace(upstream_address=Address("relay-mid-0", 4443))
        )
        assert topology.report_origin_failure(nobody) is None

    def test_simultaneous_detectors_elect_exactly_once(self):
        # Both tier-0 uplinks share a keepalive schedule, so their liveness
        # signals fire at the same virtual instant; the first runs the
        # election and transplants everyone, the second is filtered at the
        # relay layer (its session is no longer the current uplink).
        simulator, _, cluster, topology = build_cluster_tree(origins=2)
        self.subscribe_population(simulator, topology)
        push_groups(simulator, cluster, [2])
        cluster.crash_active()
        simulator.run(until=simulator.now + 2.0)
        assert cluster.epoch == 1
        assert len(cluster.promotions) == 1
        origin_events = [e for e in topology.events if e.tier == "origin"]
        assert len(origin_events) == 1

    def test_in_band_detection_drives_the_promotion_end_to_end(self):
        simulator, _, cluster, topology = build_cluster_tree(origins=2)
        received = self.subscribe_population(simulator, topology)
        push_groups(simulator, cluster, [2, 3])
        cluster.crash_active()
        # No report call here: the tier-0 keepalive'd uplinks must notice on
        # their own and promote.
        simulator.run(until=simulator.now + 2.0)
        assert cluster.epoch == 1
        assert topology.events and topology.events[0].detected_via == "pto-suspect"
        push_groups(simulator, cluster, [4, 5])
        simulator.run(until=simulator.now + 1.0)
        assert all(groups == [2, 3, 4, 5] for groups in received.values())

    def test_pending_subscribe_issued_during_outage_is_transplanted(self):
        # Satellite: a tier-0 SUBSCRIBE that is *in flight toward the dead
        # active* when the promotion runs must complete against the promoted
        # standby, not wedge forever.
        simulator, _, cluster, topology = build_cluster_tree(origins=2)
        received = self.subscribe_population(simulator, topology)
        push_groups(simulator, cluster, [2, 3])
        cluster.crash_active()
        # Grow the tree mid-outage: a fresh mid (tier 0) with a fresh edge
        # below it, and a late subscriber whose SUBSCRIBE aggregates up the
        # new chain — the new mid's upstream SUBSCRIBE can only ever target
        # the dead active until the promotion transplants it.
        new_mid = topology.add_relay("mid")
        new_edge = topology.add_relay("edge", parent=new_mid)
        late = topology.attach_subscribers(1)[0]
        assert late.leaf is new_edge, "fresh edge is the least-loaded leaf"
        late_groups: list[int] = []
        topology.subscribe_all(
            TRACK,
            on_object=lambda sub, obj: late_groups.append(obj.group_id),
            subscribers=[late],
        )
        simulator.run(until=simulator.now + 2.0)
        assert cluster.epoch == 1
        assert new_mid.relay.upstream_address == cluster.active.address
        push_groups(simulator, cluster, [4, 5])
        simulator.run(until=simulator.now + 1.0)
        assert late_groups[-2:] == [4, 5], (
            "the mid-outage SUBSCRIBE must go live through the promoted origin"
        )
        expected = [2, 3, 4, 5]
        assert all(groups == expected for groups in received.values())

    def test_double_failure_with_two_origins_is_a_clean_terminal_event(self):
        simulator, _, cluster, topology = build_cluster_tree(origins=2)
        self.subscribe_population(simulator, topology)
        push_groups(simulator, cluster, [2, 3])
        cluster.crash_active()
        simulator.run(until=simulator.now + 2.0)
        assert cluster.epoch == 1
        survivor = cluster.active
        cluster.crash_active()
        # The in-band handlers swallow the terminal error — the event loop
        # must keep running (this run hanging or raising is the regression).
        simulator.run(until=simulator.now + 3.0)
        event = survivor.failure_event
        assert event is not None and event.error == "no-surviving-origin"
        assert event.epoch is None and cluster.epoch == 1
        stranded = event.orphans("relay")
        assert stranded and all(record.new_parent == "" for record in stranded)
        # A direct report of the same death is idempotent, not a re-raise.
        assert topology.report_origin_failure(topology.tiers[0][0]) is event

    def test_direct_report_of_terminal_death_raises_after_recording(self):
        simulator, _, cluster, topology = build_cluster_tree(origins=2)
        self.subscribe_population(simulator, topology)
        push_groups(simulator, cluster, [2])
        cluster.crash_active()
        simulator.run(until=simulator.now + 2.0)
        survivor = cluster.active
        cluster.crash_active()
        with pytest.raises(NoSurvivingParentError) as excinfo:
            topology.report_origin_failure(topology.tiers[0][0], via="pto-suspect")
        assert excinfo.value.event is survivor.failure_event
        assert excinfo.value.event.error == "no-surviving-origin"

    def test_three_origins_survive_two_sequential_deaths_gapless(self):
        simulator, _, cluster, topology = build_cluster_tree(origins=3)
        received = self.subscribe_population(simulator, topology)
        push_groups(simulator, cluster, [2, 3])
        cluster.crash_active()
        simulator.run(until=simulator.now + 2.0)
        assert cluster.epoch == 1
        push_groups(simulator, cluster, [4, 5])
        cluster.crash_active()
        simulator.run(until=simulator.now + 2.0)
        assert cluster.epoch == 2
        assert cluster.active is cluster.origins[2]
        push_groups(simulator, cluster, [6, 7])
        simulator.run(until=simulator.now + 1.0)
        expected = [2, 3, 4, 5, 6, 7]
        assert all(groups == expected for groups in received.values()), (
            "two origin deaths, zero gaps"
        )


class TestOriginFailoverExperiment:
    def test_small_run_promotes_gapless_and_matches_the_model(self):
        result = run_origin_failover(
            subscribers=24, mid_relays=2, edge_per_mid=2,
            updates_before=2, updates_between=4, updates_after=4,
        )
        assert result.control_plane_kills == 0
        assert result.false_positive_events == 0
        assert result.gapless
        assert result.delivered_objects == result.expected_objects == 24 * 10
        assert result.epoch == 1 and result.promotions == 1
        assert result.event is not None and result.event.epoch == 1
        assert result.detected_via == "pto-suspect"
        assert result.detection_model_ok, (
            result.detection_latency, result.model.detection_latency,
        )
        assert result.promotion_model_ok, (
            result.promotion_latency, result.model.promotion_latency,
        )
        assert result.reattached_relays == 2
        assert result.replayed_objects > 0, (
            "outage-window objects exist only in the replay ring"
        )

    def test_seeded_runs_are_bit_identical(self):
        first = run_origin_failover(
            subscribers=16, mid_relays=2, edge_per_mid=2,
            updates_before=2, updates_between=3, updates_after=3,
        )
        second = run_origin_failover(
            subscribers=16, mid_relays=2, edge_per_mid=2,
            updates_before=2, updates_between=3, updates_after=3,
        )
        assert first.delivery_sequences == second.delivery_sequences
        assert first.detection_latency == second.detection_latency
        assert first.promotion_latency == second.promotion_latency
        assert first.rows() == second.rows()

    def test_rows_and_summary_are_reportable(self):
        result = run_origin_failover(
            subscribers=12, mid_relays=2, edge_per_mid=2,
            updates_before=2, updates_between=3, updates_after=3,
        )
        rows = result.rows()
        assert [row["phase"] for row in rows] == [
            "detect", "elect", "reattach", "promotion",
        ]
        for row in rows:
            assert row["measured_ms"] == row["model_ms"]
        summary = result.summary_row()
        assert summary["epoch"] == 1 and summary["control_plane_kills"] == 0
        assert summary["detection_ok"] and summary["promotion_ok"]


class TestReplicationDeterminismCanary:
    """An idle standby must be invisible to every seeded measurement."""

    def test_e11_fanout_outputs_identical_with_idle_standby(self):
        kwargs = dict(subscriber_counts=(10, 40), updates=3,
                      mid_relays=2, edge_per_mid=2)
        singleton = run_relay_fanout(**kwargs)
        replicated = run_relay_fanout(origins=2, **kwargs)

        def tree_rows(result):
            # origin_objects legitimately grows with a standby (the warm
            # subscription is one more publisher-side copy); every number
            # measured on the *tree* must be byte-identical.
            return [
                {k: v for k, v in row.items() if k != "origin_objects"}
                for row in result.rows()
            ]

        assert tree_rows(singleton) == tree_rows(replicated), (
            "tier traffic tables must be byte-identical: standby traffic "
            "rides the origin mesh, never the tree"
        )

    def test_e12_churn_outputs_identical_with_idle_standby(self):
        kwargs = dict(subscribers=24, mid_relays=2, edge_per_mid=2,
                      updates_before=2, updates_between=2, updates_after=2)
        singleton = run_relay_churn(**kwargs)
        replicated = run_relay_churn(origins=2, **kwargs)
        assert singleton.delivered_objects == replicated.delivered_objects
        assert singleton.gapless_subscribers == replicated.gapless_subscribers
        assert [k.latencies_by_tier for k in singleton.kills] == [
            k.latencies_by_tier for k in replicated.kills
        ]

    def test_e13_detection_outputs_identical_with_idle_standby(self):
        kwargs = dict(subscribers=24, mid_relays=2, edge_per_mid=2,
                      updates_before=2, updates_between=4, updates_after=4)
        singleton = run_failure_detection(**kwargs)
        replicated = run_failure_detection(origins=2, **kwargs)
        assert singleton.delivery_sequences == replicated.delivery_sequences
        assert [s.detection_latency for s in singleton.samples] == [
            s.detection_latency for s in replicated.samples
        ]
        assert [s.model_detection_latency for s in singleton.samples] == [
            s.model_detection_latency for s in replicated.samples
        ]


class TestOriginTelemetry:
    def test_collector_and_promotion_span_segment(self):
        telemetry = Telemetry(metrics=MetricsRegistry(), spans=SpanTracer())
        result = run_origin_failover(
            subscribers=12, mid_relays=2, edge_per_mid=2,
            updates_before=2, updates_between=3, updates_after=3,
            telemetry=telemetry,
        )
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["origin_cluster_size"] == 2
        assert snapshot["origin_cluster_alive"] == 1
        assert snapshot["origin_epoch"] == 1
        assert snapshot["origin_promotions"] == 1
        assert snapshot["origin_replayed_objects"] == result.replayed_objects
        assert snapshot["quic_packets_sent"]["role=origin"] > 0
        promotions = telemetry.spans.summary()["promotions"]
        assert len(promotions) == 1
        assert promotions[0]["epoch"] == 1
        assert promotions[0]["old_active"] == ORIGIN
        assert promotions[0]["detection_latency"] == result.detection_latency

    def test_telemetry_does_not_perturb_the_seeded_run(self):
        telemetry = Telemetry(metrics=MetricsRegistry(), spans=SpanTracer())
        traced = run_origin_failover(
            subscribers=12, mid_relays=2, edge_per_mid=2,
            updates_before=2, updates_between=3, updates_after=3,
            telemetry=telemetry,
        )
        bare = run_origin_failover(
            subscribers=12, mid_relays=2, edge_per_mid=2,
            updates_before=2, updates_between=3, updates_after=3,
        )
        assert traced.delivery_sequences == bare.delivery_sequences
        assert traced.detection_latency == bare.detection_latency
        assert traced.promotion_latency == bare.promotion_latency
