"""Tests for the MoQT authoritative server, recursive resolver and forwarder."""

from __future__ import annotations

import pytest

from repro.core.auth_server import MoqAuthoritativeServer
from repro.core.compatibility import CompatibilityMode
from repro.core.forwarder import MoqForwarder
from repro.core.mapping import DnsQuestionKey
from repro.core.recursive import MoqRecursiveResolver
from repro.dns.message import make_query
from repro.dns.name import Name
from repro.dns.resolver import StubResolver
from repro.dns.transport import DnsUdpEndpoint
from repro.dns.types import Rcode, RecordType
from repro.experiments.topology import (
    AUTH_HOST,
    RECURSIVE_HOST,
    STUB_HOST,
    SmallTopology,
    SmallTopologyConfig,
)
from repro.moqt.objectmodel import MoqtObject
from repro.moqt.session import MoqtSession
from repro.moqt.track import FullTrackName
from repro.netsim.packet import Address
from repro.quic.connection import ConnectionConfig
from repro.quic.endpoint import QuicEndpoint


def _key(name: str = "www.example.com.", rdtype: RecordType = RecordType.A) -> DnsQuestionKey:
    return DnsQuestionKey(qname=Name.from_text(name), qtype=rdtype)


def _subscribe_directly(topology: SmallTopology, key: DnsQuestionKey):
    """Open a MoQT session from the stub host straight to the auth server."""
    from repro.core.mapping import question_to_track

    endpoint = QuicEndpoint(topology.network.host(STUB_HOST))
    # Reach the auth server through the recursive host (multi-hop routing).
    connection = endpoint.connect(
        Address(AUTH_HOST, 4443), ConnectionConfig(alpn_protocols=("moq-00",))
    )
    session = MoqtSession(connection, is_client=True)
    pushed = []
    fetched = []
    subscription = session.subscribe(
        question_to_track(key), on_object=pushed.append,
        on_response=lambda s: fetched.append(("sub", s.state)),
    )
    session.joining_fetch(subscription, 1, on_complete=lambda f: fetched.append(("fetch", f)))
    return session, subscription, pushed, fetched


class TestMoqAuthoritativeServer:
    def test_fetch_returns_current_record_with_zone_serial(self):
        topology = SmallTopology()
        session, subscription, pushed, events = _subscribe_directly(topology, _key())
        topology.run(5.0)
        assert ("sub", "active") in events
        fetch = [payload for kind, payload in events if kind == "fetch"][0]
        assert fetch.succeeded
        from repro.core.encapsulation import decapsulate_response

        message = decapsulate_response(fetch.objects[-1])
        assert message.answers[0].rdata.to_text() == "192.0.2.10"
        assert fetch.objects[-1].group_id == topology.auth_zone.serial
        assert topology.moqt_auth.statistics.fetches_served == 1
        assert topology.moqt_auth.statistics.subscribes_accepted == 1

    def test_zone_change_pushes_new_object_to_subscribers(self):
        topology = SmallTopology()
        session, subscription, pushed, _ = _subscribe_directly(topology, _key())
        topology.run(5.0)
        serial = topology.update_record("203.0.113.5")
        topology.run(2.0)
        assert len(pushed) == 1
        assert pushed[0].group_id == serial
        from repro.core.encapsulation import decapsulate_response

        assert decapsulate_response(pushed[0]).answers[0].rdata.to_text() == "203.0.113.5"
        assert topology.moqt_auth.statistics.updates_published == 1

    def test_unrelated_zone_change_does_not_push(self):
        topology = SmallTopology()
        session, subscription, pushed, _ = _subscribe_directly(topology, _key())
        topology.run(5.0)
        topology.auth_zone.add("other.example.com.", "A", "198.51.100.9")
        topology.run(2.0)
        assert pushed == []
        assert topology.moqt_auth.statistics.zone_changes_seen >= 1

    def test_subscribe_outside_served_zones_rejected(self):
        topology = SmallTopology()
        session, subscription, pushed, events = _subscribe_directly(
            topology, _key("www.unrelated.org.")
        )
        topology.run(5.0)
        assert ("sub", "error") in events
        assert topology.moqt_auth.statistics.subscribes_rejected == 1

    def test_nxdomain_answer_is_served_and_updated_when_created(self):
        topology = SmallTopology()
        key = _key("new.example.com.")
        session, subscription, pushed, events = _subscribe_directly(topology, key)
        topology.run(5.0)
        fetch = [payload for kind, payload in events if kind == "fetch"][0]
        from repro.core.encapsulation import decapsulate_response

        assert decapsulate_response(fetch.objects[-1]).rcode == Rcode.NXDOMAIN
        topology.auth_zone.add("new.example.com.", "A", "198.51.100.77")
        topology.run(2.0)
        assert pushed, "creating the record must push an update to the subscriber"
        assert decapsulate_response(pushed[-1]).rcode == Rcode.NOERROR

    def test_force_publish_counts_subscribers(self):
        topology = SmallTopology()
        _subscribe_directly(topology, _key())
        topology.run(5.0)
        assert topology.moqt_auth.force_publish(_key()) == 1
        assert topology.moqt_auth.force_publish(_key("absent.example.com.")) == 0


class TestMoqRecursiveResolver:
    def test_cold_lookup_resolves_through_hierarchy(self):
        topology = SmallTopology()
        outcomes = []
        topology.moqt_recursive.resolve(_key(), outcomes.append)
        topology.run(5.0)
        outcome = outcomes[0]
        assert outcome.is_success and outcome.via_moqt
        assert outcome.message.answers[0].rdata.to_text() == "192.0.2.10"
        assert outcome.upstream_operations == 3
        assert topology.moqt_recursive.statistics.upstream_subscribe_fetch == 3

    def test_second_lookup_is_a_cache_hit(self):
        topology = SmallTopology()
        topology.moqt_recursive.resolve(_key(), lambda o: None)
        topology.run(5.0)
        outcomes = []
        topology.moqt_recursive.resolve(_key(), outcomes.append)
        assert outcomes[0].from_cache
        assert topology.moqt_recursive.statistics.cache_hits == 1

    def test_pushed_update_keeps_cache_fresh_beyond_ttl(self):
        topology = SmallTopology(SmallTopologyConfig(record_ttl=10))
        topology.moqt_recursive.resolve(_key(), lambda o: None)
        topology.run(5.0)
        serial = topology.update_record("203.0.113.99")
        topology.run(30.0)  # far beyond the 10 s TTL
        outcomes = []
        topology.moqt_recursive.resolve(_key(), outcomes.append)
        assert outcomes[0].from_cache, "subscribed records never expire"
        assert outcomes[0].message.answers[0].rdata.to_text() == "203.0.113.99"
        assert outcomes[0].version == serial
        assert topology.moqt_recursive.statistics.pushes_received >= 1

    def test_concurrent_lookups_share_one_resolution(self):
        topology = SmallTopology()
        outcomes = []
        topology.moqt_recursive.resolve(_key(), outcomes.append)
        topology.moqt_recursive.resolve(_key(), outcomes.append)
        topology.run(5.0)
        assert len(outcomes) == 2
        assert topology.moqt_recursive.statistics.upstream_subscribe_fetch == 3

    def test_serves_classic_udp_clients(self):
        topology = SmallTopology()
        stub = StubResolver(
            topology.network.host(STUB_HOST), Address(RECURSIVE_HOST, 53)
        )
        outcomes = []
        stub.resolve("www.example.com.", "A", outcomes.append)
        topology.run(5.0)
        assert outcomes[0].rcode == Rcode.NOERROR
        assert outcomes[0].rrset.sorted_rdata_texts() == ["192.0.2.10"]
        assert topology.moqt_recursive.statistics.client_queries_udp == 1

    def test_udp_fallback_when_auth_has_no_moqt(self):
        topology = SmallTopology(
            SmallTopologyConfig(moqt_on_auth=False, happy_eyeballs=True)
        )
        outcomes = []
        topology.moqt_recursive.resolve(_key(), outcomes.append)
        topology.run(10.0)
        outcome = outcomes[0]
        assert outcome.is_success
        assert not outcome.via_moqt
        assert topology.moqt_recursive.statistics.upstream_udp_queries >= 1
        entry = topology.moqt_recursive.record(_key())
        assert entry is not None and not entry.via_moqt

    def test_state_summary_reports_sessions_and_subscriptions(self):
        topology = SmallTopology()
        topology.moqt_recursive.resolve(_key(), lambda o: None)
        topology.run(5.0)
        summary = topology.moqt_recursive.state_summary()
        assert summary["open_sessions"] == 3
        assert summary["records"] >= 3
        assert summary["tracked_questions"] >= 1

    def test_run_teardown_applies_policy(self):
        from repro.core.subscription import IdleTimeoutPolicy

        topology = SmallTopology()
        topology.moqt_recursive.registry.policy = IdleTimeoutPolicy(idle_timeout=1.0)
        topology.moqt_recursive.resolve(_key(), lambda o: None)
        topology.run(5.0)
        dropped = topology.moqt_recursive.run_teardown()
        assert dropped >= 1
        entry = topology.moqt_recursive.record(_key())
        assert entry is not None and not entry.subscribed


class TestMoqForwarder:
    def test_forwarder_answers_classic_stub_queries(self):
        topology = SmallTopology()
        client = DnsUdpEndpoint(topology.network.host(STUB_HOST))
        responses = []
        client.query(
            make_query("www.example.com.", "A"), Address(STUB_HOST, 53), responses.append,
            timeout=5.0,
        )
        topology.run(10.0)
        assert responses[0] is not None
        assert responses[0].rcode == Rcode.NOERROR
        assert responses[0].answers[0].rdata.to_text() == "192.0.2.10"
        assert topology.forwarder.statistics.client_queries == 1

    def test_repeat_queries_answered_locally_without_network(self):
        topology = SmallTopology()
        key = _key()
        topology.forwarder.resolve(key, lambda m, v: None)
        topology.run(5.0)
        datagrams_before = topology.network.total_link_statistics()["datagrams_sent"]
        answers = []
        topology.forwarder.resolve(key, lambda m, v: answers.append(v))
        assert answers, "local answer must be synchronous"
        assert topology.network.total_link_statistics()["datagrams_sent"] == datagrams_before
        assert topology.forwarder.statistics.local_answers == 1

    def test_pushed_update_reaches_forwarder_and_its_clients(self):
        topology = SmallTopology()
        key = _key()
        topology.forwarder.resolve(key, lambda m, v: None)
        topology.run(5.0)
        updates = []
        topology.forwarder.on_record_updated.append(lambda k, record: updates.append(record))
        serial = topology.update_record("198.51.100.200")
        topology.run(2.0)
        assert updates and updates[0].version == serial
        assert updates[0].message.answers[0].rdata.to_text() == "198.51.100.200"
        # A classic client asking the forwarder now gets the new version
        # without any additional upstream traffic.
        answers = []
        topology.forwarder.resolve(key, lambda m, v: answers.append(m))
        assert answers[0].answers[0].rdata.to_text() == "198.51.100.200"

    def test_concurrent_identical_queries_deduplicated(self):
        topology = SmallTopology()
        key = _key()
        answers = []
        topology.forwarder.resolve(key, lambda m, v: answers.append(v))
        topology.forwarder.resolve(key, lambda m, v: answers.append(v))
        topology.run(5.0)
        assert len(answers) == 2
        assert topology.forwarder.statistics.upstream_lookups == 1

    def test_state_summary(self):
        topology = SmallTopology()
        topology.forwarder.resolve(_key(), lambda m, v: None)
        topology.run(5.0)
        summary = topology.forwarder.state_summary()
        assert summary["records"] == 1
        assert summary["open_sessions"] == 1


class TestCompatibilityModes:
    def test_decline_mode_rejects_downstream_subscription_but_answers_fetch(self):
        topology = SmallTopology(
            SmallTopologyConfig(
                moqt_on_auth=False,
                happy_eyeballs=True,
                compatibility_mode=CompatibilityMode.DECLINE_SUBSCRIPTION,
            )
        )
        key = _key()
        answers = []
        topology.forwarder.resolve(key, lambda m, v: answers.append(m))
        topology.run(10.0)
        assert answers and answers[0] is not None
        assert topology.moqt_recursive.statistics.subscriptions_declined >= 1
        # No pushes can arrive: the record is not subscribed anywhere.
        updates = []
        topology.forwarder.on_record_updated.append(lambda k, r: updates.append(r))
        topology.update_record("198.51.100.9")
        topology.run(5.0)
        assert updates == []

    def test_periodic_refresh_mode_pushes_within_one_ttl(self):
        ttl = 10
        topology = SmallTopology(
            SmallTopologyConfig(
                record_ttl=ttl,
                moqt_on_auth=False,
                happy_eyeballs=True,
                compatibility_mode=CompatibilityMode.PERIODIC_REFRESH,
            )
        )
        key = _key()
        topology.forwarder.resolve(key, lambda m, v: None)
        topology.run(5.0)
        updates = []
        topology.forwarder.on_record_updated.append(lambda k, r: updates.append(topology.simulator.now))
        change_time = topology.simulator.now
        topology.update_record("198.51.100.10")
        topology.run(ttl * 2 + 5.0)
        assert updates, "periodic refresh must propagate the change"
        assert updates[0] - change_time <= ttl * 1.5
        assert topology.moqt_recursive.statistics.refresh_republishes >= 1
