"""DatagramPool free-list cap boundaries.

The pool's free lists stop growing at ``_POOL_FREE_LIST_CAP``: a release
beyond the cap abandons the shell/buffer to the garbage collector instead of
recycling it, bounding pool memory after a burst.  These tests pin the
boundary semantics — fill *to* the cap recycles everything, fill *past* it
abandons exactly the overflow, the reuse counters stay consistent at the
cap, and a buffer retained past reclamation is never handed out again.
"""

from __future__ import annotations

import pytest

from repro.netsim import packet as packet_module
from repro.netsim.packet import Address, DatagramPool

SOURCE = Address("a", 1)
DESTINATION = Address("b", 2)


@pytest.fixture
def small_cap(monkeypatch):
    """Shrink the free-list cap so the boundary is reachable instantly."""
    monkeypatch.setattr(packet_module, "_POOL_FREE_LIST_CAP", 4)
    return 4


def _acquire_many(pool, count):
    return [
        pool.acquire(SOURCE, DESTINATION, b"payload-%d" % i) for i in range(count)
    ]


def test_release_past_cap_abandons_shells(small_cap):
    pool = DatagramPool()
    datagrams = _acquire_many(pool, small_cap + 3)
    assert pool.datagrams_allocated == small_cap + 3
    for datagram in datagrams:
        datagram.release()
    # The free list stopped at the cap; the overflow was dropped for GC.
    assert len(pool._free) == small_cap
    # Reacquiring the same population reuses exactly cap shells and
    # allocates fresh ones for the abandoned overflow.
    _acquire_many(pool, small_cap + 3)
    assert pool.datagrams_reused == small_cap
    assert pool.datagrams_allocated == (small_cap + 3) * 2 - small_cap


def test_release_past_cap_abandons_buffers(small_cap):
    pool = DatagramPool()
    buffers = [pool.acquire_buffer() for _ in range(small_cap + 2)]
    assert pool.buffers_allocated == small_cap + 2
    datagrams = []
    for index, buffer in enumerate(buffers):
        buffer += b"x" * (index + 1)
        datagrams.append(
            pool.acquire(
                SOURCE, DESTINATION, memoryview(buffer).toreadonly(), buffer=buffer
            )
        )
    for datagram in datagrams:
        datagram.release()
    assert len(pool._free_buffers) == small_cap
    reissued = [pool.acquire_buffer() for _ in range(small_cap + 2)]
    assert pool.buffers_reused == small_cap
    assert pool.buffers_allocated == (small_cap + 2) * 2 - small_cap
    # The recycled buffers come back empty, ready for serialisation.
    assert all(len(buffer) == 0 for buffer in reissued)


def test_reuse_counters_consistent_exactly_at_cap(small_cap):
    pool = DatagramPool()
    for round_index in range(3):
        datagrams = _acquire_many(pool, small_cap)
        for datagram in datagrams:
            datagram.release()
    # Round one allocated cap shells; every later round reused them all.
    assert pool.datagrams_allocated == small_cap
    assert pool.datagrams_reused == small_cap * 2
    assert len(pool._free) == small_cap


def test_retained_buffer_is_never_reissued(small_cap):
    """A buffer whose payload view is still exported must not be recycled.

    The consumer keeps a (retained) view beyond reclamation; when the pool
    later tries to reuse the buffer, clearing it raises ``BufferError`` and
    the buffer is abandoned — a stale view can never observe later sends.
    """
    pool = DatagramPool()
    buffer = pool.acquire_buffer()
    buffer += b"secret-bytes"
    payload = memoryview(buffer).toreadonly()
    datagram = pool.acquire(SOURCE, DESTINATION, payload, buffer=buffer)
    # A consumer keeps its own view of the payload without retaining the
    # datagram (the bug the abandon path defends against).
    leaked_view = memoryview(buffer)
    datagram.release()
    assert buffer in pool._free_buffers  # reclaimed: the pool's own view released
    reissued = pool.acquire_buffer()
    assert reissued is not buffer
    assert pool.buffers_abandoned == 1
    assert buffer not in pool._free_buffers
    # The stale view still sees the original bytes, untouched.
    assert bytes(leaked_view) == b"secret-bytes"
    # Later acquisitions never hand the abandoned buffer out again.
    later = [pool.acquire_buffer() for _ in range(small_cap)]
    assert all(candidate is not buffer for candidate in later)


def test_refcounted_retain_defers_reclaim(small_cap):
    pool = DatagramPool()
    datagram = pool.acquire(SOURCE, DESTINATION, b"payload")
    datagram.retain()
    datagram.release()
    assert len(pool._free) == 0  # still referenced
    datagram.release()
    assert len(pool._free) == 1
