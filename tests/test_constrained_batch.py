"""Batched vs per-datagram equivalence on constrained (bandwidth/loss) links.

The tentpole contract of ``Link.transmit_many``: for *any* standard link —
bandwidth-limited, lossy or both — a batched wave is indistinguishable from
a loop of per-datagram ``Link.transmit`` calls at the flush instant.  Same
delivery times (bit-exact floats), same drop set, same byte counters, same
seeded RNG consumption.  The property tests here drive that equivalence
with hypothesis-generated link mixes; the seeded regression pins the RNG
draw-order contract documented on :class:`repro.netsim.link.LinkConfig`.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.link import Link, LinkConfig
from repro.netsim.packet import Address, Datagram
from repro.netsim.simulator import Simulator

SRC = Address("src", 1)
DST = Address("dst", 2)

#: Bandwidth choices (bits/s): unconstrained, slow, mid, fast.  The slow end
#: makes serialisation delay dominate so FIFO ordering is actually exercised.
BANDWIDTHS = (None, 8_000.0, 64_000.0, 1_000_000.0)
DELAYS = (0.0, 0.001, 0.010, 0.050)

link_configs = st.builds(
    LinkConfig,
    delay=st.sampled_from(DELAYS),
    bandwidth=st.sampled_from(BANDWIDTHS),
    loss_rate=st.sampled_from((0.0, 0.1, 0.25, 0.5, 0.9)),
)


def _run_wave(
    seed: int,
    configs: list[LinkConfig],
    assignments: list[tuple[int, bytes]],
    batched: bool,
) -> tuple[list[tuple[int, float, bytes]], list[dict[str, int]], int]:
    """One wave over fresh links; returns (deliveries, stats, events)."""
    simulator = Simulator(seed=seed)
    deliveries: list[tuple[int, float, bytes]] = []

    def make_deliver(index: int):
        return lambda datagram: deliveries.append(
            (index, simulator.now, bytes(datagram.payload))
        )

    links = [
        Link(simulator, config, make_deliver(index))
        for index, config in enumerate(configs)
    ]
    entries = [
        (links[link_index], Datagram(SRC, DST, payload))
        for link_index, payload in assignments
    ]
    if batched:
        Link.transmit_many(simulator, entries)
    else:
        for link, datagram in entries:
            link.transmit(datagram)
    simulator.run_until_idle()
    return deliveries, [link.statistics.as_dict() for link in links], simulator.events_scheduled


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    configs=st.lists(link_configs, min_size=1, max_size=4),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_batched_wave_is_bit_identical_to_per_datagram(seed, configs, data) -> None:
    """Delivery times, drop sets and byte counters match the unbatched path."""
    assignments = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=len(configs) - 1),
                st.binary(min_size=1, max_size=40),
            ),
            min_size=1,
            max_size=25,
        )
    )
    batched_deliveries, batched_stats, batched_events = _run_wave(
        seed, configs, assignments, batched=True
    )
    plain_deliveries, plain_stats, plain_events = _run_wave(
        seed, configs, assignments, batched=False
    )
    assert batched_deliveries == plain_deliveries
    assert batched_stats == plain_stats
    # Batching must never *add* scheduler work: one event per distinct
    # arrival slot is at most one event per surviving datagram.
    assert batched_events <= plain_events


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    config=link_configs,
    waves=st.lists(
        st.lists(st.binary(min_size=1, max_size=40), min_size=1, max_size=10),
        min_size=2,
        max_size=4,
    ),
)
@settings(max_examples=40, deadline=None)
def test_successive_waves_share_the_fifo_state(seed, config, waves) -> None:
    """Back-to-back waves on one link replay the per-datagram FIFO exactly:
    the busy time carried between waves matches the unbatched fold."""

    def run(batched: bool):
        simulator = Simulator(seed=seed)
        deliveries: list[tuple[float, bytes]] = []
        link = Link(
            simulator,
            config,
            lambda datagram: deliveries.append((simulator.now, bytes(datagram.payload))),
        )
        for wave_index, wave in enumerate(waves):
            entries = [(link, Datagram(SRC, DST, payload)) for payload in wave]
            if batched:
                Link.transmit_many(simulator, entries)
            else:
                for wave_link, datagram in entries:
                    wave_link.transmit(datagram)
            simulator.run(until=simulator.now + 0.005 * (wave_index + 1))
        simulator.run_until_idle()
        return deliveries, link.statistics.as_dict()

    assert run(batched=True) == run(batched=False)


def test_seeded_draw_order_regression() -> None:
    """Pin of the RNG draw-order contract in the ``LinkConfig`` docstring.

    One ``rng.random()`` draw per entry on a lossy link, in FIFO entry
    order; serialisation draws nothing; a dropped entry does not advance
    the FIFO busy time.  The expected drop set and arrival instants are
    recomputed here from an independent ``random.Random`` with the same
    seed — if the implementation ever reorders, adds or removes a draw,
    every seeded experiment output shifts and this test names the contract
    that broke.
    """
    seed = 42
    loss_rate = 0.25
    bandwidth = 64_000.0
    delay = 0.010
    payloads = [bytes([index]) * (index + 1) for index in range(12)]

    reference_rng = random.Random(seed)
    expected: list[tuple[float, bytes]] = []
    busy = 0.0
    for payload in payloads:
        if reference_rng.random() < loss_rate:
            continue  # dropped: no busy-time advance
        busy += len(payload) * 8 / bandwidth
        expected.append((busy + delay, payload))
    assert expected, "seed 42 must keep some survivors for the pin to bite"
    assert len(expected) < len(payloads), "seed 42 must drop something"

    for batched in (True, False):
        simulator = Simulator(seed=seed)
        deliveries: list[tuple[float, bytes]] = []
        link = Link(
            simulator,
            LinkConfig(delay=delay, bandwidth=bandwidth, loss_rate=loss_rate),
            lambda datagram: deliveries.append((simulator.now, bytes(datagram.payload))),
        )
        entries = [(link, Datagram(SRC, DST, payload)) for payload in payloads]
        if batched:
            Link.transmit_many(simulator, entries)
        else:
            for _, datagram in entries:
                link.transmit(datagram)
        simulator.run_until_idle()
        assert deliveries == expected
        assert link.statistics.datagrams_dropped == len(payloads) - len(expected)


class TestExtraBytesGuard:
    """``Link.extra_bytes`` is accounting-only: unconstrained links only."""

    def _link(self, config: LinkConfig) -> Link:
        simulator = Simulator(seed=0)
        return Link(simulator, config, lambda datagram: None)

    def test_unconstrained_link_accepts_correction(self) -> None:
        link = self._link(LinkConfig(delay=0.001))
        link.extra_bytes = 123
        assert link.extra_bytes == 123

    def test_bandwidth_link_rejects_nonzero_correction(self) -> None:
        link = self._link(LinkConfig(delay=0.001, bandwidth=1_000_000.0))
        with pytest.raises(ValueError, match="accounting-only"):
            link.extra_bytes = 1

    def test_lossy_link_rejects_nonzero_correction(self) -> None:
        link = self._link(LinkConfig(delay=0.001, loss_rate=0.1))
        with pytest.raises(ValueError, match="accounting-only"):
            link.extra_bytes = 1

    def test_zero_correction_is_always_allowed(self) -> None:
        link = self._link(LinkConfig(delay=0.001, bandwidth=8_000.0, loss_rate=0.5))
        link.extra_bytes = 0
        assert link.extra_bytes == 0
