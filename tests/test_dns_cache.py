"""Tests for the TTL-driven DNS cache."""

from __future__ import annotations

import pytest

from repro.dns.cache import DnsCache
from repro.dns.name import Name
from repro.dns.rdata import ARdata
from repro.dns.rr import ResourceRecord, RRset
from repro.dns.types import Rcode, RecordType
from repro.netsim.simulator import Simulator


def _rrset(name: str, addresses: list[str], ttl: int = 300) -> RRset:
    owner = Name.from_text(name)
    return RRset(
        owner,
        RecordType.A,
        [ResourceRecord(owner, RecordType.A, ARdata(address), ttl) for address in addresses],
    )


@pytest.fixture
def cache(simulator: Simulator) -> DnsCache:
    return DnsCache(simulator)


class TestCacheBasics:
    def test_miss_then_hit(self, simulator, cache):
        name = Name.from_text("www.example.com.")
        assert cache.get(name, RecordType.A) is None
        cache.put(name, RecordType.A, _rrset("www.example.com.", ["192.0.2.1"]))
        entry = cache.get(name, RecordType.A)
        assert entry is not None and entry.rrset is not None
        assert cache.statistics.hits == 1
        assert cache.statistics.misses == 1

    def test_expiry_follows_simulated_clock(self, simulator, cache):
        name = Name.from_text("www.example.com.")
        cache.put(name, RecordType.A, _rrset("www.example.com.", ["192.0.2.1"], ttl=10))
        simulator.advance(9.999)
        assert cache.get(name, RecordType.A) is not None
        simulator.advance(0.002)
        assert cache.get(name, RecordType.A) is None
        assert cache.statistics.expirations == 1

    def test_fresh_rrset_decrements_ttl(self, simulator, cache):
        name = Name.from_text("www.example.com.")
        cache.put(name, RecordType.A, _rrset("www.example.com.", ["192.0.2.1"], ttl=100))
        simulator.advance(40.0)
        fresh = cache.fresh_rrset(name, RecordType.A)
        assert fresh is not None
        assert fresh.ttl == 60

    def test_negative_entries_require_ttl(self, cache):
        name = Name.from_text("nope.example.com.")
        with pytest.raises(ValueError):
            cache.put(name, RecordType.A, None)
        cache.put(name, RecordType.A, None, rcode=Rcode.NXDOMAIN, ttl=30)
        entry = cache.get(name, RecordType.A)
        assert entry is not None and entry.rcode == Rcode.NXDOMAIN

    def test_peek_does_not_affect_statistics(self, cache):
        name = Name.from_text("www.example.com.")
        cache.put(name, RecordType.A, _rrset("www.example.com.", ["192.0.2.1"]))
        cache.peek(name, RecordType.A)
        assert cache.statistics.lookups == 0

    def test_remove_and_flush(self, cache):
        name = Name.from_text("www.example.com.")
        cache.put(name, RecordType.A, _rrset("www.example.com.", ["192.0.2.1"]))
        assert cache.remove(name, RecordType.A) is True
        assert cache.remove(name, RecordType.A) is False
        cache.put(name, RecordType.A, _rrset("www.example.com.", ["192.0.2.1"]))
        cache.flush()
        assert len(cache) == 0

    def test_hit_ratio(self, simulator, cache):
        name = Name.from_text("www.example.com.")
        cache.put(name, RecordType.A, _rrset("www.example.com.", ["192.0.2.1"]))
        cache.get(name, RecordType.A)
        cache.get(Name.from_text("other.example.com."), RecordType.A)
        assert cache.statistics.hit_ratio == pytest.approx(0.5)


class TestCacheBounds:
    def test_eviction_prefers_earliest_expiry(self, simulator):
        cache = DnsCache(simulator, max_entries=2)
        short = Name.from_text("short.example.com.")
        long_lived = Name.from_text("long.example.com.")
        cache.put(short, RecordType.A, _rrset("short.example.com.", ["192.0.2.1"], ttl=10))
        cache.put(long_lived, RecordType.A, _rrset("long.example.com.", ["192.0.2.2"], ttl=1000))
        cache.put(
            Name.from_text("third.example.com."),
            RecordType.A,
            _rrset("third.example.com.", ["192.0.2.3"], ttl=500),
        )
        assert cache.peek(short, RecordType.A) is None
        assert cache.peek(long_lived, RecordType.A) is not None

    def test_purge_expired_bulk(self, simulator, cache):
        for index in range(5):
            cache.put(
                Name.from_text(f"h{index}.example.com."),
                RecordType.A,
                _rrset(f"h{index}.example.com.", ["192.0.2.9"], ttl=10 + index),
            )
        simulator.advance(12.5)
        purged = cache.purge_expired()
        assert purged == 3
        assert len(cache) == 2

    def test_pushed_updates_counted(self, cache):
        name = Name.from_text("www.example.com.")
        cache.put(name, RecordType.A, _rrset("www.example.com.", ["192.0.2.1"]), pushed=True)
        assert cache.statistics.pushed_updates == 1
