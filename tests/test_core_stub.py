"""Tests for the standalone MoQT stub resolver (the paper's missing piece)."""

from __future__ import annotations

import pytest

from repro.core.stub import MoqStubResolver
from repro.dns.types import MOQT_PORT
from repro.experiments.topology import RECURSIVE_HOST, STUB_HOST, SmallTopology, SmallTopologyConfig
from repro.netsim.packet import Address


def _make_stub(topology: SmallTopology) -> MoqStubResolver:
    return MoqStubResolver(
        topology.network.host(STUB_HOST),
        recursive_moqt_address=Address(RECURSIVE_HOST, MOQT_PORT),
    )


class TestMoqStubResolver:
    def test_no_udp_listener_is_bound(self):
        topology = SmallTopology()
        # The topology's forwarder already owns port 53; the stub resolver
        # must not try to bind any UDP port at all.
        stub = _make_stub(topology)
        assert stub.address is None

    def test_gethostbyname_returns_addresses(self):
        topology = SmallTopology()
        stub = _make_stub(topology)
        results = []
        stub.gethostbyname("www.example.com.", results.append)
        topology.run(5.0)
        assert results == [["192.0.2.10"]]
        assert stub.is_subscribed("www.example.com.")

    def test_gethostbyname_failure_returns_empty_list(self):
        topology = SmallTopology()
        stub = _make_stub(topology)
        results = []
        stub.gethostbyname("missing.example.com.", results.append)
        topology.run(5.0)
        assert results == [[]]

    def test_gethostbyname6_for_missing_aaaa_is_empty(self):
        topology = SmallTopology()
        stub = _make_stub(topology)
        results = []
        stub.gethostbyname6("www.example.com.", results.append)
        topology.run(5.0)
        assert results == [[]]

    def test_resolve_https_returns_alpn_list(self):
        topology = SmallTopology()
        topology.auth_zone.add(
            "www.example.com.", "HTTPS", "1 . alpn=h2,h3", ttl=300
        )
        stub = _make_stub(topology)
        results = []
        stub.resolve_https("www.example.com.", results.append)
        topology.run(5.0)
        assert results == [["h2", "h3"]]

    def test_pushed_updates_keep_answers_current_without_lookups(self):
        topology = SmallTopology()
        stub = _make_stub(topology)
        stub.gethostbyname("www.example.com.", lambda addresses: None)
        topology.run(5.0)
        topology.update_record("203.0.113.200")
        topology.run(2.0)
        datagrams_before = topology.network.total_link_statistics()["datagrams_sent"]
        fresh = []
        stub.gethostbyname("www.example.com.", fresh.append)
        assert fresh == [["203.0.113.200"]]
        assert topology.network.total_link_statistics()["datagrams_sent"] == datagrams_before
        assert stub.statistics.pushes_received >= 1
