"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.netsim.link import LinkConfig
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator


@pytest.fixture
def simulator() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def two_host_network(simulator: Simulator) -> Network:
    """Two hosts ('10.0.0.1', '10.0.0.2') joined by a 20 ms RTT link."""
    network = Network(simulator)
    network.add_host("10.0.0.1")
    network.add_host("10.0.0.2")
    network.connect("10.0.0.1", "10.0.0.2", LinkConfig(delay=0.010))
    return network


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running end-to-end simulations")
