"""Whole-system integration tests combining workload, topology and both stacks."""

from __future__ import annotations

import pytest

from repro.core.mapping import DnsQuestionKey
from repro.dns.name import Name
from repro.dns.types import RecordType
from repro.experiments.topology import build_workload_topology
from repro.workload.change_model import ChangeModel, ChangeModelConfig
from repro.workload.toplist import SyntheticToplist, ToplistConfig
from repro.workload.zones import WorkloadZones, ZoneBuildConfig


@pytest.fixture(scope="module")
def workload_topology():
    toplist = SyntheticToplist(ToplistConfig(size=30, seed=17))
    zones = WorkloadZones(
        toplist,
        change_model=ChangeModel(ChangeModelConfig(seed=17)),
        config=ZoneBuildConfig(auth_server_count=2),
    )
    return build_workload_topology(zones, moqt_fraction=1.0)


@pytest.mark.slow
class TestWorkloadTopology:
    def test_forwarder_resolves_many_domains_through_full_hierarchy(self, workload_topology):
        topology = workload_topology
        domains = [d for d in topology.zones.toplist.domains() if d.has_type(RecordType.A)][:10]
        answers = {}

        def make_callback(name):
            def callback(message, version):
                answers[name] = (message, version)

            return callback

        for domain in domains:
            key = DnsQuestionKey(qname=domain.name, qtype=RecordType.A)
            topology.forwarder.resolve(key, make_callback(domain.name))
        topology.simulator.run(until=60.0)

        assert len(answers) == len(domains)
        for domain in domains:
            message, version = answers[domain.name]
            assert message is not None, domain.name
            expected = topology.zones.assignment(domain.name).change_process.current_addresses()
            observed = sorted(record.rdata.to_text() for record in message.answers)
            assert observed == sorted(expected)

    def test_record_changes_propagate_to_subscribed_forwarder(self, workload_topology):
        topology = workload_topology
        simulator = topology.simulator
        # Pick a domain whose change process is actually dynamic so a change
        # is guaranteed to occur within a few observation intervals.
        domain = next(
            d
            for d in topology.zones.toplist.domains()
            if d.has_type(RecordType.A)
            and topology.zones.assignment(d.name).change_process is not None
            and topology.zones.assignment(d.name).change_process.change_probability > 0.3
        )
        key = DnsQuestionKey(qname=domain.name, qtype=RecordType.A)
        topology.forwarder.resolve(key, lambda message, version: None)
        simulator.run(until=simulator.now + 30.0)

        updates = []
        topology.forwarder.on_record_updated.append(
            lambda k, record: updates.append((k, record)) if k == key else None
        )
        # Force changes until the change process actually produces one.
        changed = False
        for _ in range(50):
            if topology.zones.advance_domain(domain.name):
                changed = True
                break
        if not changed:
            pytest.skip("change process produced no change for this domain")
        change_time = simulator.now
        simulator.run(until=change_time + 5.0)
        assert updates, "zone change must be pushed to the subscribed forwarder"
        _, record = updates[0]
        expected = topology.zones.assignment(domain.name).change_process.current_addresses()
        observed = sorted(r.rdata.to_text() for r in record.message.answers)
        assert observed == sorted(expected)

    def test_recursive_resolver_aggregates_auth_sessions(self, workload_topology):
        topology = workload_topology
        summary = topology.recursive.state_summary()
        # Root + TLD(s) + at most two auth hosts were contacted.
        assert 1 <= summary["open_sessions"] <= len(topology.moqt_servers)
        assert summary["records"] > 0

    def test_classic_and_moqt_servers_serve_same_zone_content(self, workload_topology):
        topology = workload_topology
        domain = next(
            d for d in topology.zones.toplist.domains() if d.has_type(RecordType.A)
        )
        assignment = topology.zones.assignment(domain.name)
        classic = topology.classic_servers[assignment.auth_host]
        result = classic.resolve_locally(domain.name, RecordType.A)
        moqt_server = topology.moqt_servers[assignment.auth_host]
        answer = moqt_server.answer_question(DnsQuestionKey(domain.name, RecordType.A))
        assert answer is not None
        moqt_message, _ = answer
        assert sorted(r.rdata.to_text() for r in result.answers) == sorted(
            r.rdata.to_text() for r in moqt_message.answers
        )


@pytest.mark.slow
class TestMixedDeployment:
    def test_partial_moqt_deployment_still_resolves_everything(self):
        toplist = SyntheticToplist(ToplistConfig(size=12, seed=23))
        zones = WorkloadZones(toplist, config=ZoneBuildConfig(auth_server_count=2))
        topology = build_workload_topology(zones, moqt_fraction=0.5)
        domains = [d for d in toplist.domains() if d.has_type(RecordType.A)][:6]
        answers = {}
        for domain in domains:
            key = DnsQuestionKey(qname=domain.name, qtype=RecordType.A)
            topology.forwarder.resolve(
                key, lambda message, version, name=domain.name: answers.__setitem__(name, message)
            )
        topology.simulator.run(until=90.0)
        assert len(answers) == len(domains)
        assert all(message is not None for message in answers.values())
        # With only part of the hierarchy speaking MoQT, some lookups must
        # have used the UDP fallback.
        assert topology.recursive.statistics.upstream_udp_queries > 0
