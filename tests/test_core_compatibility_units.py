"""Unit tests for the §4.5 compatibility helpers."""

from __future__ import annotations

import pytest

from repro.core.compatibility import (
    CapabilityMemo,
    CompatibilityMode,
    HappyEyeballsConfig,
    RefreshScheduler,
    UpstreamCapability,
)
from repro.core.mapping import DnsQuestionKey
from repro.dns.name import Name
from repro.dns.types import RecordType
from repro.netsim.simulator import Simulator


def _key(name: str) -> DnsQuestionKey:
    return DnsQuestionKey(Name.from_text(name), RecordType.A)


class TestCapabilityMemo:
    def test_starts_unknown(self):
        memo = CapabilityMemo()
        assert memo.get("1.2.3.4") is UpstreamCapability.UNKNOWN
        assert len(memo) == 0

    def test_records_and_overrides_capabilities(self):
        memo = CapabilityMemo()
        memo.note_udp_only("1.2.3.4")
        assert memo.get("1.2.3.4") is UpstreamCapability.UDP_ONLY
        memo.note_moqt_success("1.2.3.4")
        assert memo.get("1.2.3.4") is UpstreamCapability.MOQT
        assert memo.known_moqt_hosts() == ["1.2.3.4"]

    def test_forget(self):
        memo = CapabilityMemo()
        memo.note_moqt_success("1.2.3.4")
        memo.forget("1.2.3.4")
        assert memo.get("1.2.3.4") is UpstreamCapability.UNKNOWN


class TestRefreshScheduler:
    def test_refreshes_at_interval_until_cancelled(self):
        simulator = Simulator()
        scheduler = RefreshScheduler(simulator)
        refreshed = []
        scheduler.schedule(_key("a.example."), interval=10.0, refresh=refreshed.append)
        simulator.run(until=35.0)
        assert len(refreshed) == 3
        assert scheduler.refresh_counts()[_key("a.example.")] == 3
        assert scheduler.cancel(_key("a.example.")) is True
        simulator.run(until=100.0)
        assert len(refreshed) == 3

    def test_duplicate_schedule_is_idempotent(self):
        simulator = Simulator()
        scheduler = RefreshScheduler(simulator)
        refreshed = []
        scheduler.schedule(_key("a.example."), 5.0, refreshed.append)
        scheduler.schedule(_key("a.example."), 1.0, refreshed.append)
        simulator.run(until=6.0)
        assert len(refreshed) == 1
        assert len(scheduler) == 1

    def test_cancel_unknown_returns_false_and_cancel_all(self):
        simulator = Simulator()
        scheduler = RefreshScheduler(simulator)
        assert scheduler.cancel(_key("missing.example.")) is False
        scheduler.schedule(_key("a.example."), 5.0, lambda key: None)
        scheduler.schedule(_key("b.example."), 5.0, lambda key: None)
        scheduler.cancel_all()
        assert len(scheduler) == 0

    def test_is_scheduled(self):
        simulator = Simulator()
        scheduler = RefreshScheduler(simulator)
        assert not scheduler.is_scheduled(_key("a.example."))
        scheduler.schedule(_key("a.example."), 5.0, lambda key: None)
        assert scheduler.is_scheduled(_key("a.example."))


class TestHappyEyeballsConfig:
    def test_defaults_race_simultaneously(self):
        config = HappyEyeballsConfig()
        assert config.enabled
        assert config.udp_head_start == 0.0
        assert config.moqt_timeout > 0

    def test_modes_enumerated(self):
        assert CompatibilityMode.DECLINE_SUBSCRIPTION.value == "decline"
        assert CompatibilityMode.PERIODIC_REFRESH.value == "periodic-refresh"
