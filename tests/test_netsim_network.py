"""Tests for links, hosts and routing in the network simulator."""

from __future__ import annotations

import pytest

from repro.netsim.link import Link, LinkConfig
from repro.netsim.network import Network, NoRouteError, UnknownHostError
from repro.netsim.node import Host, PortInUseError
from repro.netsim.packet import Address, Datagram
from repro.netsim.simulator import Simulator
from repro.netsim.stats import Counter, SummaryStatistics, cumulative_distribution, histogram
from repro.netsim.trace import TraceRecorder, format_sequence


class _Collector:
    """A port handler that records delivered datagrams with timestamps."""

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self.received: list[tuple[float, Datagram]] = []

    def datagram_received(self, datagram: Datagram) -> None:
        self.received.append((self.simulator.now, datagram))


class TestLinkConfig:
    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            LinkConfig(delay=-1.0)

    def test_rejects_bad_loss_rate(self):
        with pytest.raises(ValueError):
            LinkConfig(loss_rate=1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            LinkConfig(bandwidth=0)


class TestLink:
    def test_delivers_after_propagation_delay(self, simulator):
        delivered = []
        link = Link(simulator, LinkConfig(delay=0.25), lambda d: delivered.append(simulator.now))
        link.transmit(_datagram(b"x" * 10))
        simulator.run_until_idle()
        assert delivered == [0.25]

    def test_serialisation_delay_applies_with_bandwidth(self, simulator):
        delivered = []
        # 8000 bits at 8000 bps -> 1 second serialisation + 0.5 propagation.
        link = Link(
            simulator,
            LinkConfig(delay=0.5, bandwidth=8000),
            lambda d: delivered.append(simulator.now),
        )
        link.transmit(_datagram(b"a" * 1000))
        simulator.run_until_idle()
        assert delivered == [pytest.approx(1.5)]

    def test_fifo_serialisation_queues_back_to_back(self, simulator):
        delivered = []
        link = Link(
            simulator,
            LinkConfig(delay=0.0, bandwidth=8000),
            lambda d: delivered.append(simulator.now),
        )
        link.transmit(_datagram(b"a" * 1000))
        link.transmit(_datagram(b"b" * 1000))
        simulator.run_until_idle()
        assert delivered == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_loss_drops_datagrams_and_counts_them(self, simulator):
        delivered = []
        link = Link(simulator, LinkConfig(delay=0.01, loss_rate=0.999999), lambda d: delivered.append(d))
        for _ in range(20):
            link.transmit(_datagram(b"y"))
        simulator.run_until_idle()
        assert delivered == []
        assert link.statistics.datagrams_dropped == 20

    def test_statistics_track_bytes(self, simulator):
        link = Link(simulator, LinkConfig(delay=0.01), lambda d: None)
        link.transmit(_datagram(b"abcd"))
        simulator.run_until_idle()
        assert link.statistics.bytes_sent == 4
        assert link.statistics.bytes_delivered == 4


class TestHost:
    def test_bind_and_deliver(self, simulator):
        host = Host(simulator, "h1")
        collector = _Collector(simulator)
        address = host.bind(53, collector)
        assert address == Address("h1", 53)
        host.deliver(_datagram(b"q", destination=address))
        assert len(collector.received) == 1

    def test_double_bind_rejected(self, simulator):
        host = Host(simulator, "h1")
        host.bind(53, _Collector(simulator))
        with pytest.raises(PortInUseError):
            host.bind(53, _Collector(simulator))

    def test_ephemeral_ports_are_unique(self, simulator):
        host = Host(simulator, "h1")
        first = host.bind_ephemeral(_Collector(simulator))
        second = host.bind_ephemeral(_Collector(simulator))
        assert first.port != second.port

    def test_unbound_port_drops_silently(self, simulator):
        host = Host(simulator, "h1")
        host.deliver(_datagram(b"q", destination=Address("h1", 9)))  # no exception

    def test_send_requires_attachment(self, simulator):
        host = Host(simulator, "h1")
        with pytest.raises(Exception):
            host.send(_datagram(b"q"))


class TestBulkTopologyHelpers:
    def test_add_hosts_names_sequentially(self, simulator):
        network = Network(simulator)
        hosts = network.add_hosts("edge", 3)
        assert [host.address for host in hosts] == ["edge-0", "edge-1", "edge-2"]
        assert network.host("edge-1") is hosts[1]
        with pytest.raises(ValueError):
            network.add_hosts("edge", -1)

    def test_connect_star_wires_every_peripheral_to_the_hub(self, simulator):
        network = Network(simulator)
        hub = network.add_host("hub")
        peripherals = network.add_hosts("leaf", 4)
        network.connect_star(hub, peripherals, LinkConfig(delay=0.005))
        for leaf in peripherals:
            assert network.has_link("hub", leaf.address)
            assert network.has_link(leaf.address, "hub")
            assert network.link("hub", leaf.address).config.delay == 0.005

    def test_connect_star_asymmetric_configs(self, simulator):
        network = Network(simulator)
        network.add_host("hub")
        network.add_hosts("leaf", 2)
        network.connect_star(
            "hub",
            ["leaf-0", "leaf-1"],
            LinkConfig(delay=0.001),
            reverse_config=LinkConfig(delay=0.050),
        )
        assert network.link("hub", "leaf-0").config.delay == 0.001
        assert network.link("leaf-0", "hub").config.delay == 0.050


class TestNetworkRouting:
    def test_direct_link_delivery_and_latency(self, simulator, two_host_network):
        network = two_host_network
        collector = _Collector(simulator)
        network.host("10.0.0.2").bind(7, collector)
        network.host("10.0.0.1").send(
            Datagram(Address("10.0.0.1", 1000), Address("10.0.0.2", 7), b"ping")
        )
        simulator.run_until_idle()
        assert [time for time, _ in collector.received] == [pytest.approx(0.010)]

    def test_loopback_delivery(self, simulator):
        network = Network(simulator)
        network.add_host("solo")
        collector = _Collector(simulator)
        network.host("solo").bind(5, collector)
        network.host("solo").send(
            Datagram(Address("solo", 9), Address("solo", 5), b"self")
        )
        simulator.run_until_idle()
        assert len(collector.received) == 1

    def test_multi_hop_routing_uses_shortest_delay_path(self, simulator):
        network = Network(simulator)
        for name in ("a", "b", "c"):
            network.add_host(name)
        network.connect("a", "b", LinkConfig(delay=0.01))
        network.connect("b", "c", LinkConfig(delay=0.02))
        collector = _Collector(simulator)
        network.host("c").bind(80, collector)
        network.host("a").send(Datagram(Address("a", 1), Address("c", 80), b"via-b"))
        simulator.run_until_idle()
        assert [time for time, _ in collector.received] == [pytest.approx(0.03)]
        assert network.shortest_path("a", "c") == ["a", "b", "c"]

    def test_unknown_destination_raises(self, simulator, two_host_network):
        with pytest.raises(UnknownHostError):
            two_host_network.host("10.0.0.1").send(
                Datagram(Address("10.0.0.1", 1), Address("nowhere", 1), b"x")
            )

    def test_no_route_raises(self, simulator):
        network = Network(simulator)
        network.add_host("a")
        network.add_host("b")
        with pytest.raises(NoRouteError):
            network.shortest_path("a", "b")

    def test_duplicate_host_rejected(self, simulator):
        network = Network(simulator)
        network.add_host("a")
        with pytest.raises(ValueError):
            network.add_host("a")

    def test_total_link_statistics_aggregate(self, simulator, two_host_network):
        network = two_host_network
        collector = _Collector(simulator)
        network.host("10.0.0.2").bind(7, collector)
        network.host("10.0.0.1").send(
            Datagram(Address("10.0.0.1", 1), Address("10.0.0.2", 7), b"12345")
        )
        simulator.run_until_idle()
        totals = network.total_link_statistics()
        assert totals["datagrams_delivered"] == 1
        assert totals["bytes_delivered"] == 5

    def test_trace_records_send_and_delivery(self, simulator, two_host_network):
        network = two_host_network
        collector = _Collector(simulator)
        network.host("10.0.0.2").bind(7, collector)
        network.host("10.0.0.1").send(
            Datagram(Address("10.0.0.1", 1), Address("10.0.0.2", 7), b"x", protocol="test")
        )
        simulator.run_until_idle()
        assert network.trace.count("datagram-sent") == 1
        assert network.trace.count("datagram-delivered") == 1
        event = network.trace.events("datagram-sent")[0]
        assert event.attribute("protocol") == "test"


class TestTraceRecorder:
    def test_filter_and_kinds(self, simulator):
        trace = TraceRecorder(simulator)
        trace.record("a", value=1)
        trace.record("b", value=2)
        trace.record("a", value=3)
        assert trace.kinds() == ["a", "b"]
        assert len(trace.filter(lambda e: e.attribute("value", 0) >= 2)) == 2
        trace.clear()
        assert trace.count() == 0

    def test_listeners_invoked(self, simulator):
        trace = TraceRecorder(simulator)
        seen = []
        trace.subscribe(lambda event: seen.append(event.kind))
        trace.record("x")
        assert seen == ["x"]

    def test_format_sequence_contains_attributes(self, simulator):
        trace = TraceRecorder(simulator)
        trace.record("step", source="stub", destination="resolver")
        text = format_sequence(trace.events())
        assert "step" in text and "source=stub" in text


class TestStatisticsHelpers:
    def test_counter_increment_and_reset(self):
        counter = Counter()
        counter.increment("queries")
        counter.increment("queries", 2)
        assert counter.get("queries") == 3
        counter.reset()
        assert counter.get("queries") == 0

    def test_summary_statistics_percentiles(self):
        stats = SummaryStatistics()
        stats.extend(range(1, 101))
        assert stats.count == 100
        assert stats.mean == pytest.approx(50.5)
        assert stats.percentile(50) == pytest.approx(50.5)
        assert stats.percentile(90) == pytest.approx(90.1)
        assert stats.minimum == 1 and stats.maximum == 100
        assert stats.median == stats.percentile(50)

    def test_summary_statistics_empty_safe(self):
        stats = SummaryStatistics()
        assert stats.mean == 0.0
        assert stats.percentile(99) == 0.0
        assert stats.stddev == 0.0

    def test_percentile_out_of_range_rejected(self):
        stats = SummaryStatistics()
        stats.add(1.0)
        with pytest.raises(ValueError):
            stats.percentile(101)

    def test_cumulative_distribution(self):
        cdf = cumulative_distribution([1.0, 1.0, 2.0, 4.0])
        assert cdf == [(1.0, 0.5), (2.0, 0.75), (4.0, 1.0)]

    def test_histogram_counts_exact_bins(self):
        counts = histogram([300, 300, 60, 999], bins=[60, 300, 3600])
        assert counts == {60: 1, 300: 2, 3600: 0}


def _datagram(payload: bytes, destination: Address | None = None) -> Datagram:
    return Datagram(
        source=Address("src", 1),
        destination=destination if destination is not None else Address("dst", 2),
        payload=payload,
    )
