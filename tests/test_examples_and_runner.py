"""Smoke tests: every example script runs to completion, and so does the runner."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, argv: list[str] | None = None) -> None:
    path = EXAMPLES_DIR / name
    original_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = original_argv


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        _run_example("quickstart.py")
        output = capsys.readouterr().out
        assert "Cold lookup" in output
        assert "pushed update reached the stub" in output

    def test_cdn_load_balancing(self, capsys):
        _run_example("cdn_load_balancing.py")
        output = capsys.readouterr().out
        assert "fewer messages" in output
        assert "kbit/s per stub" in output

    def test_dynamic_dns(self, capsys):
        _run_example("dynamic_dns.py")
        output = capsys.readouterr().out
        assert "pushed to 4 subscribers" in output
        assert "Gbit/s" in output

    def test_deep_space(self, capsys):
        _run_example("deep_space.py")
        output = capsys.readouterr().out
        assert "answer served locally" in output
        assert "new version on Mars" in output

    def test_cdn_relay_tree(self, capsys):
        _run_example("cdn_relay_tree.py")
        output = capsys.readouterr().out
        assert "less origin traffic" in output
        assert "answered from the edge cache: hits=1 misses=0" in output
        assert "the tree absorbs" in output

    def test_measurement_study_with_custom_population(self, capsys):
        _run_example("measurement_study.py", argv=["1200"])
        output = capsys.readouterr().out
        assert "Fig. 1a" in output and "Fig. 1b" in output
        assert "shape matches: True" in output

    def test_dns_over_relay(self, capsys):
        _run_example("dns_over_relay.py")
        output = capsys.readouterr().out
        assert "forwarder via edge-0" in output
        assert "resolver via edge-1" in output
        assert "mid tier only" in output
        assert "push reached forwarder via edge-0" in output


@pytest.mark.slow
class TestRunner:
    def test_run_all_fast_produces_every_experiment(self):
        from repro.experiments.runner import run_all

        reports = run_all(fast=True)
        identifiers = [report.experiment_id for report in reports]
        assert identifiers == [
            "E1", "E2", "E3", "E4", "E5", "E6", "E7/E8", "E9", "E10", "E11", "E12",
            "E13", "E14", "E15", "E16",
        ]
        for report in reports:
            assert report.table and "-" in report.table
