"""Tests for the Fig. 3 question↔track mapping and Fig. 4 encapsulation."""

from __future__ import annotations

import pytest

from repro.core.encapsulation import (
    DNS_OBJECT_ID,
    decapsulate_response,
    encapsulate_response,
    normalize_response,
    response_version,
)
from repro.core.errors import MappingError
from repro.core.mapping import (
    DnsQuestionKey,
    QNAME_BYTE_BUDGET,
    question_to_track,
    track_for_query,
    track_to_question,
)
from repro.dns.message import make_query, make_response
from repro.dns.name import Name
from repro.dns.rdata import ARdata
from repro.dns.rr import ResourceRecord
from repro.dns.types import DNSClass, Opcode, Rcode, RecordType
from repro.moqt.objectmodel import MoqtObject
from repro.moqt.track import FullTrackName, TrackNamespace


class TestQuestionToTrack:
    def test_namespace_structure_matches_fig3(self):
        key = DnsQuestionKey(
            qname=Name.from_text("www.example.com"),
            qtype=RecordType.A,
            qclass=DNSClass.IN,
            recursion_desired=True,
            checking_disabled=False,
        )
        track = question_to_track(key)
        elements = track.namespace.elements
        assert len(elements) == 3
        assert len(elements[0]) == 1
        assert elements[1] == (1).to_bytes(2, "big")     # QTYPE A
        assert elements[2] == (1).to_bytes(2, "big")     # QCLASS IN
        assert track.name == Name.from_text("www.example.com").to_wire()

    def test_flag_byte_packs_opcode_rd_cd(self):
        key = DnsQuestionKey(
            qname=Name.from_text("example.com"),
            qtype=RecordType.AAAA,
            opcode=Opcode.QUERY,
            recursion_desired=True,
            checking_disabled=True,
        )
        flags = question_to_track(key).namespace.elements[0][0]
        assert flags & 0x0F == int(Opcode.QUERY)
        assert flags & 0x10  # RD
        assert flags & 0x20  # CD

    def test_roundtrip_preserves_all_fields(self):
        key = DnsQuestionKey(
            qname=Name.from_text("_sip._udp.example.org"),
            qtype=RecordType.SRV,
            qclass=DNSClass.IN,
            opcode=Opcode.QUERY,
            recursion_desired=False,
            checking_disabled=True,
        )
        assert track_to_question(question_to_track(key)) == key

    def test_same_question_maps_to_same_track_regardless_of_message_id(self):
        first = make_query("cdn.example.com", "A", message_id=111)
        second = make_query("CDN.example.COM", "A", message_id=222)
        assert track_for_query(first) == track_for_query(second)

    def test_different_types_map_to_different_tracks(self):
        a_key = DnsQuestionKey(Name.from_text("example.com"), RecordType.A)
        https_key = DnsQuestionKey(Name.from_text("example.com"), RecordType.HTTPS)
        assert question_to_track(a_key) != question_to_track(https_key)

    def test_qname_budget_is_4091_bytes(self):
        assert QNAME_BYTE_BUDGET == 4091

    def test_combined_length_stays_within_moqt_limit(self):
        longest_label = "a" * 63
        name = Name.from_text(".".join([longest_label] * 3) + ".example.com")
        track = question_to_track(DnsQuestionKey(name, RecordType.A))
        assert track.encoded_length() <= 4096


class TestTrackToQuestion:
    def test_rejects_wrong_namespace_shape(self):
        bad = FullTrackName(TrackNamespace.of(b"\x10"), b"\x00")
        with pytest.raises(MappingError):
            track_to_question(bad)

    def test_rejects_bad_element_sizes(self):
        bad = FullTrackName(
            TrackNamespace((b"\x10\x00", b"\x00\x01", b"\x00\x01")), Name.root().to_wire()
        )
        with pytest.raises(MappingError):
            track_to_question(bad)

    def test_rejects_trailing_bytes_after_qname(self):
        key = DnsQuestionKey(Name.from_text("example.com"), RecordType.A)
        track = question_to_track(key)
        bad = FullTrackName(track.namespace, track.name + b"\x01x")
        with pytest.raises(MappingError):
            track_to_question(bad)

    def test_rejects_unknown_qtype(self):
        namespace = TrackNamespace((b"\x10", (999).to_bytes(2, "big"), (1).to_bytes(2, "big")))
        with pytest.raises(MappingError):
            track_to_question(FullTrackName(namespace, Name.root().to_wire()))


class TestEncapsulation:
    def _response(self, message_id: int = 55) -> tuple:
        query = make_query("www.example.com", "A", message_id=message_id)
        record = ResourceRecord(
            Name.from_text("www.example.com"), RecordType.A, ARdata("192.0.2.4"), 300
        )
        return query, make_response(query, answers=[record], authoritative=True)

    def test_object_metadata_follows_fig4(self):
        _, response = self._response()
        obj = encapsulate_response(response, zone_version=17)
        assert obj.group_id == 17
        assert obj.object_id == DNS_OBJECT_ID == 0
        assert obj.subgroup_id == 0
        assert response_version(obj) == 17

    def test_payload_is_full_dns_message(self):
        _, response = self._response()
        obj = encapsulate_response(response, zone_version=3)
        decoded = decapsulate_response(obj)
        assert decoded.answers[0].rdata == ARdata("192.0.2.4")
        assert decoded.question.qname == Name.from_text("www.example.com")
        assert decoded.rcode == Rcode.NOERROR

    def test_message_id_normalised_for_identical_objects(self):
        _, first = self._response(message_id=100)
        _, second = self._response(message_id=200)
        assert (
            encapsulate_response(first, 5).payload == encapsulate_response(second, 5).payload
        )

    def test_normalize_preserves_flags_and_sections(self):
        _, response = self._response()
        normalized = normalize_response(response)
        assert normalized.header.message_id == 0
        assert normalized.header.flags.aa == response.header.flags.aa
        assert normalized.answers == response.answers

    def test_negative_zone_version_rejected(self):
        _, response = self._response()
        with pytest.raises(MappingError):
            encapsulate_response(response, zone_version=-1)

    def test_decapsulate_garbage_rejected(self):
        with pytest.raises(MappingError):
            decapsulate_response(MoqtObject(group_id=1, object_id=0, payload=b"\x01\x02"))
